//! Exact twig match counting — the ground truth the estimators are
//! measured against.
//!
//! Implements the paper's match definitions directly:
//!
//! - **Presence** (Definition 2): the number of distinct data nodes at
//!   which the twig is rooted by at least one 1-1 (sibling-injective)
//!   mapping.
//! - **Occurrence** (Definition 3): the total number of such mappings.
//!   In the set version of the problem (no duplicate sibling labels) the
//!   two coincide; they differ exactly on multiset data like DBLP's
//!   repeated `author` children.
//!
//! Matching is *unordered* in the base problem; the [`ordered`] module
//! implements the ordered variant from the paper's future-work section
//! (query siblings must map to data siblings in document order). Wildcard
//! (`*`) query nodes — the other future-work extension — are handled
//! inline: a `*` matches a downward chain of one or more elements.
//!
//! The occurrence count at a node is the [permanent](perm) of the matrix
//! `M[i][j] = count(query_child_i, data_child_j)`; query fan-out is tiny
//! (≤ 5 in the paper's workloads) so the `O(m·2^k)` subset DP is cheap.
//! Counts saturate at `u64::MAX` rather than overflow.

pub mod count;
pub mod ordered;
pub mod perm;

pub use count::{count_occurrence, count_presence, ExactCounter};
pub use ordered::{count_occurrence_ordered, count_presence_ordered};
