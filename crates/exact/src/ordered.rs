//! Ordered twig matching (the paper's first future-work direction).
//!
//! Identical to the unordered problem except that the children of each
//! query node must map to data children whose document-order positions are
//! strictly increasing in the query children's order. QUERY 2 of the
//! paper's Figure 1 is the canonical example: `book(author(A1),
//! author(A2), year(Y1))` has two unordered matches but only one ordered
//! match against a book whose authors appear as `A2, A1`.

use twig_tree::{DataTree, NodeId, Twig, TwigLabel, TwigNodeId};
use twig_util::FxHashMap;

use crate::perm::ordered_permanent;

/// Memoizing ordered counter, mirroring [`crate::ExactCounter`].
struct OrderedCounter<'a> {
    tree: &'a DataTree,
    twig: &'a Twig,
    memo: FxHashMap<(u32, u32), u64>,
}

impl OrderedCounter<'_> {
    fn root_candidates(&self) -> Vec<NodeId> {
        match self.twig.label(self.twig.root()) {
            TwigLabel::Element(name) => match self.tree.symbol(name) {
                Some(sym) => self.tree.nodes_with_label(sym).to_vec(),
                None => Vec::new(),
            },
            _ => self.tree.dfs().collect(),
        }
    }

    fn count(&mut self, q: TwigNodeId, v: NodeId) -> u64 {
        if let Some(&cached) = self.memo.get(&(q.0, v.0)) {
            return cached;
        }
        let result = match self.twig.label(q) {
            TwigLabel::Value(prefix) => match self.tree.text(v) {
                Some(text) if text.starts_with(prefix.as_str()) => 1,
                _ => 0,
            },
            TwigLabel::Element(name) => {
                let matches =
                    self.tree.element_symbol(v).is_some_and(|sym| self.tree.label_str(sym) == name);
                if matches {
                    self.children_mappings(q, v)
                } else {
                    0
                }
            }
            TwigLabel::Star => {
                if self.tree.element_symbol(v).is_none() {
                    0
                } else {
                    let mut total = self.children_mappings(q, v);
                    let children: Vec<NodeId> = self.tree.children(v).collect();
                    for child in children {
                        if self.tree.element_symbol(child).is_some() {
                            total = total.saturating_add(self.count(q, child));
                        }
                    }
                    total
                }
            }
        };
        self.memo.insert((q.0, v.0), result);
        result
    }

    fn children_mappings(&mut self, q: TwigNodeId, v: NodeId) -> u64 {
        let q_children = self.twig.children(q).to_vec();
        if q_children.is_empty() {
            return 1;
        }
        let v_children: Vec<NodeId> = self.tree.children(v).collect();
        if q_children.len() > v_children.len() {
            return 0;
        }
        let rows: Vec<Vec<u64>> = q_children
            .iter()
            .map(|&qc| v_children.iter().map(|&vc| self.count(qc, vc)).collect())
            .collect();
        ordered_permanent(&rows)
    }
}

/// Ordered presence count: distinct rooting nodes with at least one
/// order-preserving mapping.
pub fn count_presence_ordered(tree: &DataTree, twig: &Twig) -> u64 {
    let mut counter = OrderedCounter { tree, twig, memo: FxHashMap::default() };
    counter.root_candidates().iter().filter(|&&v| counter.count(twig.root(), v) > 0).count() as u64
}

/// Ordered occurrence count: total order-preserving mappings.
pub fn count_occurrence_ordered(tree: &DataTree, twig: &Twig) -> u64 {
    let mut counter = OrderedCounter { tree, twig, memo: FxHashMap::default() };
    let root = twig.root();
    counter
        .root_candidates()
        .iter()
        .fold(0u64, |acc, &v| acc.saturating_add(counter.count(root, v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::{count_occurrence, count_presence};
    use twig_tree::DataTree;

    fn twig(expr: &str) -> Twig {
        Twig::parse(expr).unwrap()
    }

    #[test]
    fn paper_query2_ordered_vs_unordered() {
        // Figure 1 discussion: a book with authors in the order A2, A1.
        // Query book(author(A1), author(A2)): unordered 1, ordered 0.
        let tree =
            DataTree::from_xml("<dblp><book><author>A2</author><author>A1</author></book></dblp>")
                .unwrap();
        let q = twig(r#"book(author("A1"),author("A2"))"#);
        assert_eq!(count_occurrence(&tree, &q), 1);
        assert_eq!(count_occurrence_ordered(&tree, &q), 0);
        let q_rev = twig(r#"book(author("A2"),author("A1"))"#);
        assert_eq!(count_occurrence_ordered(&tree, &q_rev), 1);
    }

    #[test]
    fn ordered_at_most_unordered() {
        let tree = DataTree::from_xml(concat!(
            "<r>",
            "<x><a>1</a><b>1</b><a>2</a><b>2</b></x>",
            "<x><b>1</b><a>1</a></x>",
            "</r>"
        ))
        .unwrap();
        for expr in ["x(a,b)", "x(b,a)", "x(a,a)", "x(a)", "r(x(a),x(b))"] {
            let q = twig(expr);
            assert!(
                count_occurrence_ordered(&tree, &q) <= count_occurrence(&tree, &q),
                "query {expr}"
            );
            assert!(count_presence_ordered(&tree, &q) <= count_presence(&tree, &q), "query {expr}");
        }
    }

    #[test]
    fn interleaved_siblings_counted_correctly() {
        // x has children a b a b; query x(a,b): ordered pairs with a
        // before b: (a1,b1), (a1,b2), (a2,b2) = 3; unordered = 4.
        let tree = DataTree::from_xml("<r><x><a>1</a><b>1</b><a>2</a><b>2</b></x></r>").unwrap();
        let q = twig("x(a,b)");
        assert_eq!(count_occurrence(&tree, &q), 4);
        assert_eq!(count_occurrence_ordered(&tree, &q), 3);
    }

    #[test]
    fn single_path_queries_unaffected_by_order() {
        let tree = DataTree::from_xml("<r><x><a>hello</a></x><x><a>help</a></x></r>").unwrap();
        let q = twig(r#"x(a("hel"))"#);
        assert_eq!(count_occurrence(&tree, &q), count_occurrence_ordered(&tree, &q));
        assert_eq!(count_occurrence_ordered(&tree, &q), 2);
    }

    #[test]
    fn ordered_presence_counts_roots() {
        let tree = DataTree::from_xml(concat!(
            "<r>",
            "<x><a>1</a><b>1</b></x>", // ordered ✓
            "<x><b>1</b><a>1</a></x>", // ordered ✗ for (a,b)
            "</r>"
        ))
        .unwrap();
        let q = twig("x(a,b)");
        assert_eq!(count_presence(&tree, &q), 2);
        assert_eq!(count_presence_ordered(&tree, &q), 1);
    }
}
