//! Robustness: the parser must never panic, whatever the input.
//!
//! Inputs are produced by small hand-rolled generators over a
//! deterministic SplitMix64 stream (no external fuzzing framework — the
//! container builds offline). Failing seeds print in the panic message
//! and reproduce exactly.

use twig_util::SplitMix64;
use twig_xml::{Document, Reader};

const CASES: u64 = 512;

fn drive(input: &str) {
    // Pull every event until end or error; must not panic.
    let mut reader = Reader::new(input);
    while let Ok(Some(_)) = reader.next() {}
    let _ = Document::parse(input);
}

/// Arbitrary (mostly multi-byte-heavy) UTF-8 of up to 200 chars.
fn arbitrary_string(rng: &mut SplitMix64) -> String {
    let len = rng.index(201);
    let mut out = String::with_capacity(len * 2);
    for _ in 0..len {
        let c = match rng.index(5) {
            // ASCII, including controls.
            0 | 1 => char::from(rng.u32_in(0, 0x7F) as u8),
            // Latin/greek/cyrillic two-byte range.
            2 => char::from_u32(rng.u32_in(0x80, 0x7FF)).unwrap_or('\u{FFFD}'),
            // Three-byte range, skipping the surrogate gap.
            3 => {
                let v = rng.u32_in(0x800, 0xFFFF);
                char::from_u32(v).unwrap_or('\u{FFFD}')
            }
            // Astral plane.
            _ => char::from_u32(rng.u32_in(0x1_0000, 0x10_FFFF)).unwrap_or('\u{FFFD}'),
        };
        out.push(c);
    }
    out
}

/// Strings dense in XML-significant bytes of up to 200 chars.
fn markup_soup(rng: &mut SplitMix64) -> String {
    const ALPHABET: &[u8] = br#"<>/&;="'abcxyz[]!? -"#;
    let len = rng.index(201);
    (0..len).map(|_| char::from(ALPHABET[rng.index(ALPHABET.len())])).collect()
}

/// Arbitrary UTF-8 never panics the parser.
#[test]
fn arbitrary_strings_do_not_panic() {
    let mut rng = SplitMix64::new(0x0A11_D0C5);
    for case in 0..CASES {
        let input = arbitrary_string(&mut rng);
        // Re-deriving the input from the case number is impossible once
        // the stream advanced; print the input itself on panic instead.
        let result = std::panic::catch_unwind(|| drive(&input));
        assert!(result.is_ok(), "case {case} panicked on input {input:?}");
    }
}

/// Markup-dense strings never panic the parser.
#[test]
fn markup_soup_does_not_panic() {
    let mut rng = SplitMix64::new(0x5007);
    for case in 0..CASES {
        let input = markup_soup(&mut rng);
        let result = std::panic::catch_unwind(|| drive(&input));
        assert!(result.is_ok(), "case {case} panicked on input {input:?}");
    }
}

/// Truncations of valid documents never panic and never succeed with
/// missing structure.
#[test]
fn truncated_documents_fail_cleanly() {
    let valid = r#"<a k="v&amp;w"><!--c--><b>text</b><![CDATA[x]]><c/></a>"#;
    for cut in 1..60usize {
        let boundary = valid
            .char_indices()
            .map(|(i, _)| i)
            .chain([valid.len()])
            .rfind(|&i| i <= cut)
            .unwrap_or(0);
        let truncated = &valid[..boundary];
        if truncated.is_empty() {
            continue;
        }
        drive(truncated);
        // A strict prefix shorter than the whole document must not parse
        // into a complete DOM.
        if boundary < valid.len() {
            assert!(Document::parse(truncated).is_err(), "cut {cut} parsed: {truncated:?}");
        }
    }
}

#[test]
fn pathological_nesting_of_brackets() {
    for input in [
        "<!DOCTYPE [[[[",
        "<![CDATA[",
        "<!--",
        "<?",
        "</",
        "<a b=",
        "<a b='",
        "&#xFFFFFFFFFF;",
        "<a>&#x;</a>",
        "<<<<>>>>",
    ] {
        drive(input);
    }
}
