//! Robustness: the parser must never panic, whatever the input.

use proptest::prelude::*;
use twig_xml::{Document, Reader};

fn drive(input: &str) {
    // Pull every event until end or error; must not panic.
    let mut reader = Reader::new(input);
    loop {
        match reader.next() {
            Ok(Some(_)) => continue,
            Ok(None) | Err(_) => break,
        }
    }
    let _ = Document::parse(input);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary UTF-8 never panics the parser.
    #[test]
    fn arbitrary_strings_do_not_panic(input in ".{0,200}") {
        drive(&input);
    }

    /// Markup-dense strings never panic the parser.
    #[test]
    fn markup_soup_does_not_panic(input in r#"[<>/&;="'a-z\[\]!? -]{0,200}"#) {
        drive(&input);
    }

    /// Truncations of valid documents never panic and never succeed
    /// with missing structure.
    #[test]
    fn truncated_documents_fail_cleanly(cut in 1usize..60) {
        let valid = r#"<a k="v&amp;w"><!--c--><b>text</b><![CDATA[x]]><c/></a>"#;
        let boundary = valid
            .char_indices()
            .map(|(i, _)| i)
            .chain([valid.len()])
            .filter(|&i| i <= cut)
            .next_back()
            .unwrap_or(0);
        let truncated = &valid[..boundary];
        if !truncated.is_empty() {
            drive(truncated);
            // A strict prefix shorter than the whole document must not
            // parse into a complete DOM.
            if boundary < valid.len() {
                prop_assert!(Document::parse(truncated).is_err());
            }
        }
    }
}

#[test]
fn pathological_nesting_of_brackets() {
    for input in [
        "<!DOCTYPE [[[[", "<![CDATA[", "<!--", "<?", "</", "<a b=", "<a b='",
        "&#xFFFFFFFFFF;", "<a>&#x;</a>", "<<<<>>>>",
    ] {
        drive(input);
    }
}
