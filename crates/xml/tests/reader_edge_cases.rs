//! Edge-case coverage for the XML reader beyond the unit tests.

use twig_xml::{Document, Element, Event, Reader};

fn events(input: &str) -> Vec<String> {
    let mut reader = Reader::new(input);
    let mut out = Vec::new();
    while let Some(event) = reader.next().expect("parse error") {
        out.push(match event {
            Event::Start { name, attrs, .. } => {
                format!("+{name}[{}]", attrs.len())
            }
            Event::End { name } => format!("-{name}"),
            Event::Text(t) => format!("t:{t}"),
        });
    }
    out
}

#[test]
fn utf8_element_names_and_text() {
    let evts = events("<données><été>çà</été></données>");
    assert_eq!(evts, ["+données[0]", "+été[0]", "t:çà", "-été", "-données"]);
}

#[test]
fn multibyte_text_with_entities() {
    let evts = events("<a>día &amp; noche — 日本語</a>");
    assert_eq!(evts[1], "t:día & noche — 日本語");
}

#[test]
fn attribute_edge_cases() {
    let evts = events(r#"<a empty="" spaced = "v" single='s"q'/>"#);
    assert_eq!(evts[0], "+a[3]");
    let doc = Document::parse(r#"<a empty="" single='s"q'/>"#).unwrap();
    assert_eq!(doc.root.attrs[0], ("empty".to_owned(), String::new()));
    assert_eq!(doc.root.attrs[1], ("single".to_owned(), "s\"q".to_owned()));
}

#[test]
fn deep_nesting_does_not_overflow() {
    let depth = 5_000;
    let mut xml = String::new();
    for i in 0..depth {
        xml.push_str(&format!("<d{}>", i % 7));
    }
    xml.push('x');
    for i in (0..depth).rev() {
        xml.push_str(&format!("</d{}>", i % 7));
    }
    let mut reader = Reader::new(&xml);
    let mut count = 0usize;
    while reader.next().expect("parses").is_some() {
        count += 1;
    }
    assert_eq!(count, depth * 2 + 1);
}

#[test]
fn cdata_with_markup_inside() {
    let evts = events("<a><![CDATA[<b>&amp;</b>]]></a>");
    assert_eq!(evts[1], "t:<b>&amp;</b>", "CDATA content is literal");
}

#[test]
fn comments_between_everything() {
    let evts = events("<!--x--><a><!--y-->1<!--z--><b/><!--w--></a><!--v-->");
    assert_eq!(evts, ["+a[0]", "t:1", "+b[0]", "-b", "-a"]);
}

#[test]
fn processing_instruction_mid_document() {
    let evts = events("<a><?php echo ?><b/></a>");
    assert_eq!(evts, ["+a[0]", "+b[0]", "-b", "-a"]);
}

#[test]
fn numeric_references_boundaries() {
    let evts = events("<a>&#9;&#x10FFFF;</a>");
    assert_eq!(evts[1], format!("t:\t{}", char::from_u32(0x10FFFF).unwrap()));
    // Surrogate code points are invalid chars.
    let mut reader = Reader::new("<a>&#xD800;</a>");
    let mut failed = false;
    loop {
        match reader.next() {
            Ok(Some(_)) => continue,
            Ok(None) => break,
            Err(_) => {
                failed = true;
                break;
            }
        }
    }
    assert!(failed, "surrogate reference must be rejected");
}

#[test]
fn tag_names_with_allowed_punctuation() {
    let evts = events("<ns:a-b.c_1><x/></ns:a-b.c_1>");
    assert_eq!(evts[0], "+ns:a-b.c_1[0]");
}

#[test]
fn crlf_and_tabs_as_whitespace() {
    let evts = events("<a\r\n\tk=\"v\"\r\n>\r\n<b/>\r\n</a>");
    assert_eq!(evts, ["+a[1]", "+b[0]", "-b", "-a"]);
}

#[test]
fn doctype_with_internal_subset_and_angle_brackets() {
    let input = r#"<!DOCTYPE r [
        <!ELEMENT r (a)*>
        <!ENTITY x "y">
    ]><r><a/></r>"#;
    let evts = events(input);
    assert_eq!(evts, ["+r[0]", "+a[0]", "-a", "-r"]);
}

#[test]
fn writer_escapes_everything_roundtrip() {
    let nasty = "a<b>c&d\"e'f\u{1F980}g";
    let el = Element::new("x").with_attr("k", nasty).with_text(nasty);
    let text = twig_xml::writer::element_to_string(&el);
    let doc = Document::parse(&text).unwrap();
    assert_eq!(doc.root, el);
}

#[test]
fn malformed_inputs_fail_cleanly() {
    for bad in [
        "<a",
        "<a b></a>",
        "<a 1k=\"v\"></a>",
        "< a></a>",
        "<a></ a>",
        "<a><![CDATA[x]></a>",
        "<a>&#;</a>",
        "<a k=v></a>",
        "<>x</>",
        "<a k=\"v></a>",
    ] {
        assert!(Document::parse(bad).is_err(), "accepted: {bad}");
    }
}

#[test]
fn large_text_nodes() {
    let big = "x".repeat(1 << 20);
    let xml = format!("<a>{big}</a>");
    let doc = Document::parse(&xml).unwrap();
    assert_eq!(doc.root.text().len(), 1 << 20);
}
