//! A minimal, dependency-free, non-validating XML parser and writer.
//!
//! The twig estimation pipeline ingests XML documents (DBLP, SWISS-PROT in
//! the paper) and turns them into node-labeled trees. This crate provides
//! exactly the XML subset those corpora need:
//!
//! - elements with attributes, text content, self-closing tags,
//! - the five predefined entities plus numeric character references,
//! - comments, CDATA sections, processing instructions and a DOCTYPE
//!   declaration (all skipped or passed through),
//! - a streaming pull parser ([`Reader`]) for large documents and a small
//!   DOM ([`Document`]/[`Element`]) built on top of it,
//! - a writer ([`write_element`]) with correct escaping, used by the
//!   synthetic corpus generators.
//!
//! It is *non-validating*: it checks well-formedness (tag balance, syntax)
//! but not DTDs or namespaces — matching how the paper's systems treat XML
//! as a labeled tree, nothing more.

pub mod dom;
pub mod error;
pub mod escape;
pub mod reader;
pub mod writer;

pub use dom::{Document, Element, Node};
pub use error::{Error, Result};
pub use reader::{Event, Reader};
pub use writer::write_element;
