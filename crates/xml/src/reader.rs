//! Streaming pull parser.
//!
//! [`Reader`] walks a `&str` and yields [`Event`]s. It keeps an open-tag
//! stack so well-formedness (tag balance) is checked during the single
//! pass; memory use is O(depth), independent of document size.

use std::borrow::Cow;

use crate::error::{Error, ErrorKind, Result};
use crate::escape::unescape;

/// One parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<'a> {
    /// `<name attr="v">` — `empty` is true for `<name/>` (an `End` event is
    /// still emitted immediately after, so consumers never special-case it).
    Start {
        /// Tag name.
        name: &'a str,
        /// Attributes in document order, values unescaped.
        attrs: Vec<(&'a str, Cow<'a, str>)>,
        /// True for a self-closing tag.
        empty: bool,
    },
    /// `</name>` (or synthesized for a self-closing tag).
    End {
        /// Tag name.
        name: &'a str,
    },
    /// Text content with entities resolved. Whitespace-only runs between
    /// elements are skipped.
    Text(Cow<'a, str>),
}

/// Pull parser over an in-memory document.
pub struct Reader<'a> {
    input: &'a str,
    pos: usize,
    stack: Vec<&'a str>,
    /// Set when a self-closing tag was emitted and its `End` is pending.
    pending_end: Option<&'a str>,
    seen_root: bool,
    finished_root: bool,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            pos: 0,
            stack: Vec::new(),
            pending_end: None,
            seen_root: false,
            finished_root: false,
        }
    }

    /// Current byte offset (for diagnostics).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Current element nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn err(&self, kind: ErrorKind) -> Error {
        Error::new(self.pos, kind)
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    /// Returns the next event, or `None` at a well-formed end of document.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Event<'a>>> {
        if let Some(name) = self.pending_end.take() {
            self.pop_tag(name)?;
            return Ok(Some(Event::End { name }));
        }
        loop {
            if self.pos >= self.input.len() {
                if !self.stack.is_empty() {
                    return Err(self.err(ErrorKind::UnclosedElements(self.stack.len())));
                }
                if !self.seen_root {
                    return Err(self.err(ErrorKind::BadDocumentStructure("no root element")));
                }
                return Ok(None);
            }
            if self.bytes()[self.pos] == b'<' {
                match self.peek_markup() {
                    Markup::Comment => self.skip_until("-->", "comment")?,
                    Markup::Cdata => return self.parse_cdata().map(Some),
                    Markup::Declaration => self.skip_doctype()?,
                    Markup::ProcessingInstruction => {
                        self.skip_until("?>", "processing instruction")?
                    }
                    Markup::EndTag => return self.parse_end_tag().map(Some),
                    Markup::StartTag => return self.parse_start_tag().map(Some),
                }
            } else {
                match self.parse_text()? {
                    Some(event) => return Ok(Some(event)),
                    None => continue, // whitespace-only run
                }
            }
        }
    }

    fn peek_markup(&self) -> Markup {
        let rest = &self.bytes()[self.pos..];
        if rest.starts_with(b"<!--") {
            Markup::Comment
        } else if rest.starts_with(b"<![CDATA[") {
            Markup::Cdata
        } else if rest.starts_with(b"<!") {
            Markup::Declaration
        } else if rest.starts_with(b"<?") {
            Markup::ProcessingInstruction
        } else if rest.starts_with(b"</") {
            Markup::EndTag
        } else {
            Markup::StartTag
        }
    }

    fn skip_until(&mut self, terminator: &str, what: &'static str) -> Result<()> {
        match self.input[self.pos..].find(terminator) {
            Some(found) => {
                self.pos += found + terminator.len();
                Ok(())
            }
            None => {
                self.pos = self.input.len();
                Err(self.err(ErrorKind::UnexpectedEof(what)))
            }
        }
    }

    /// Skips `<!DOCTYPE ...>` including a bracketed internal subset.
    fn skip_doctype(&mut self) -> Result<()> {
        let mut depth = 0usize;
        let mut in_subset = false;
        let bytes = self.bytes();
        let mut i = self.pos;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => in_subset = true,
                b']' => in_subset = false,
                b'<' => depth += 1,
                b'>' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 && !in_subset {
                        self.pos = i + 1;
                        return Ok(());
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.pos = self.input.len();
        Err(self.err(ErrorKind::UnexpectedEof("declaration")))
    }

    fn parse_cdata(&mut self) -> Result<Event<'a>> {
        let start = self.pos + "<![CDATA[".len();
        match self.input[start..].find("]]>") {
            Some(found) => {
                let text = &self.input[start..start + found];
                self.pos = start + found + 3;
                Ok(Event::Text(Cow::Borrowed(text)))
            }
            None => {
                self.pos = self.input.len();
                Err(self.err(ErrorKind::UnexpectedEof("CDATA section")))
            }
        }
    }

    fn parse_text(&mut self) -> Result<Option<Event<'a>>> {
        let start = self.pos;
        let end =
            self.input[start..].find('<').map(|found| start + found).unwrap_or(self.input.len());
        let raw = &self.input[start..end];
        self.pos = end;
        if raw.trim().is_empty() {
            return Ok(None);
        }
        if self.stack.is_empty() {
            return Err(self.err(ErrorKind::BadDocumentStructure("text outside root element")));
        }
        let text = unescape(raw).map_err(|ent| self.err(ErrorKind::BadEntity(ent)))?;
        Ok(Some(Event::Text(text)))
    }

    fn parse_start_tag(&mut self) -> Result<Event<'a>> {
        debug_assert_eq!(self.bytes()[self.pos], b'<');
        if self.finished_root {
            return Err(self.err(ErrorKind::BadDocumentStructure("content after root element")));
        }
        self.pos += 1;
        let name = self.read_name("start tag")?;
        let mut attrs = Vec::new();
        loop {
            self.skip_whitespace();
            match self.bytes().get(self.pos) {
                None => return Err(self.err(ErrorKind::UnexpectedEof("start tag"))),
                Some(b'>') => {
                    self.pos += 1;
                    self.stack.push(name);
                    self.seen_root = true;
                    return Ok(Event::Start { name, attrs, empty: false });
                }
                Some(b'/') => {
                    if self.bytes().get(self.pos + 1) != Some(&b'>') {
                        return Err(self.err(ErrorKind::Malformed("start tag")));
                    }
                    self.pos += 2;
                    self.stack.push(name);
                    self.seen_root = true;
                    self.pending_end = Some(name);
                    return Ok(Event::Start { name, attrs, empty: true });
                }
                Some(_) => {
                    let attr_name = self.read_name("attribute")?;
                    self.skip_whitespace();
                    if self.bytes().get(self.pos) != Some(&b'=') {
                        return Err(self.err(ErrorKind::Malformed("attribute (missing '=')")));
                    }
                    self.pos += 1;
                    self.skip_whitespace();
                    let quote = match self.bytes().get(self.pos) {
                        Some(&q @ (b'"' | b'\'')) => q,
                        _ => {
                            return Err(self.err(ErrorKind::Malformed("attribute (missing quote)")))
                        }
                    };
                    self.pos += 1;
                    let value_start = self.pos;
                    let value_end = self.input[value_start..]
                        .find(quote as char)
                        .map(|found| value_start + found)
                        .ok_or_else(|| self.err(ErrorKind::UnexpectedEof("attribute value")))?;
                    let raw = &self.input[value_start..value_end];
                    self.pos = value_end + 1;
                    let value = unescape(raw).map_err(|ent| self.err(ErrorKind::BadEntity(ent)))?;
                    attrs.push((attr_name, value));
                }
            }
        }
    }

    fn parse_end_tag(&mut self) -> Result<Event<'a>> {
        self.pos += 2; // "</"
        let name = self.read_name("end tag")?;
        self.skip_whitespace();
        if self.bytes().get(self.pos) != Some(&b'>') {
            return Err(self.err(ErrorKind::Malformed("end tag")));
        }
        self.pos += 1;
        self.pop_tag(name)?;
        Ok(Event::End { name })
    }

    fn pop_tag(&mut self, name: &'a str) -> Result<()> {
        match self.stack.pop() {
            Some(open) if open == name => {
                if self.stack.is_empty() {
                    self.finished_root = true;
                }
                Ok(())
            }
            Some(open) => Err(self.err(ErrorKind::MismatchedTag {
                expected: open.to_owned(),
                found: name.to_owned(),
            })),
            None => Err(self.err(ErrorKind::UnopenedTag(name.to_owned()))),
        }
    }

    fn read_name(&mut self, what: &'static str) -> Result<&'a str> {
        let start = self.pos;
        let bytes = self.bytes();
        while self.pos < bytes.len() && is_name_byte(bytes[self.pos], self.pos == start) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err(ErrorKind::Malformed(what)));
        }
        Ok(&self.input[start..self.pos])
    }

    fn skip_whitespace(&mut self) {
        let bytes = self.bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }
}

enum Markup {
    Comment,
    Cdata,
    Declaration,
    ProcessingInstruction,
    EndTag,
    StartTag,
}

fn is_name_byte(byte: u8, first: bool) -> bool {
    byte.is_ascii_alphabetic()
        || byte == b'_'
        || byte == b':'
        || byte >= 0x80
        || (!first && (byte.is_ascii_digit() || byte == b'-' || byte == b'.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Vec<Event<'_>> {
        let mut reader = Reader::new(input);
        let mut out = Vec::new();
        while let Some(event) = reader.next().expect("parse error") {
            out.push(event);
        }
        out
    }

    fn parse_error(input: &str) -> Error {
        let mut reader = Reader::new(input);
        loop {
            match reader.next() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected parse error for {input:?}"),
                Err(err) => return err,
            }
        }
    }

    #[test]
    fn simple_element_with_text() {
        let evts = events("<a>hello</a>");
        assert_eq!(evts.len(), 3);
        assert!(matches!(&evts[0], Event::Start { name: "a", .. }));
        assert!(matches!(&evts[1], Event::Text(t) if t == "hello"));
        assert!(matches!(&evts[2], Event::End { name: "a" }));
    }

    #[test]
    fn nested_elements_and_whitespace_skipping() {
        let evts = events("<a>\n  <b>x</b>\n  <c/>\n</a>");
        let names: Vec<String> = evts
            .iter()
            .map(|e| match e {
                Event::Start { name, .. } => format!("+{name}"),
                Event::End { name } => format!("-{name}"),
                Event::Text(t) => format!("t:{t}"),
            })
            .collect();
        assert_eq!(names, ["+a", "+b", "t:x", "-b", "+c", "-c", "-a"]);
    }

    #[test]
    fn self_closing_emits_start_and_end() {
        let evts = events("<a><b/></a>");
        assert!(matches!(&evts[1], Event::Start { name: "b", empty: true, .. }));
        assert!(matches!(&evts[2], Event::End { name: "b" }));
    }

    #[test]
    fn attributes_parsed_and_unescaped() {
        let evts = events(r#"<a key="v1" other='a &amp; b'/>"#);
        match &evts[0] {
            Event::Start { attrs, .. } => {
                assert_eq!(attrs[0], ("key", Cow::Borrowed("v1")));
                assert_eq!(attrs[1].0, "other");
                assert_eq!(attrs[1].1, "a & b");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prolog_comment_doctype_cdata() {
        let input = "<?xml version=\"1.0\"?>\n<!DOCTYPE dblp SYSTEM \"dblp.dtd\" [<!ENTITY x \"y\">]>\n<!-- top --><a><![CDATA[1 < 2]]></a>";
        let evts = events(input);
        assert!(matches!(&evts[1], Event::Text(t) if t == "1 < 2"));
    }

    #[test]
    fn entity_text_unescaped() {
        let evts = events("<a>x &lt; y &#33;</a>");
        assert!(matches!(&evts[1], Event::Text(t) if t == "x < y !"));
    }

    #[test]
    fn mismatched_tag_is_error() {
        let err = parse_error("<a><b></a></b>");
        assert!(matches!(err.kind, ErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element_is_error() {
        let err = parse_error("<a><b>");
        assert!(matches!(err.kind, ErrorKind::UnclosedElements(2)));
    }

    #[test]
    fn unopened_end_tag_is_error() {
        let err = parse_error("<a></a></b>");
        assert!(matches!(err.kind, ErrorKind::UnopenedTag(_) | ErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn text_outside_root_is_error() {
        let err = parse_error("hello<a></a>");
        assert!(matches!(err.kind, ErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn empty_document_is_error() {
        let err = parse_error("   ");
        assert!(matches!(err.kind, ErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn second_root_is_error() {
        let err = parse_error("<a></a><b></b>");
        assert!(matches!(err.kind, ErrorKind::BadDocumentStructure(_)));
    }

    #[test]
    fn bad_entity_reported() {
        let err = parse_error("<a>&nope;</a>");
        assert!(matches!(err.kind, ErrorKind::BadEntity(ref e) if e == "nope"));
    }

    #[test]
    fn unterminated_comment_is_eof_error() {
        let err = parse_error("<a></a><!-- never closed");
        assert!(matches!(err.kind, ErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut reader = Reader::new("<a><b></b></a>");
        assert_eq!(reader.depth(), 0);
        reader.next().unwrap();
        assert_eq!(reader.depth(), 1);
        reader.next().unwrap();
        assert_eq!(reader.depth(), 2);
    }
}
