//! Parse error type with byte-offset diagnostics.

use std::fmt;

/// Result alias for XML operations.
pub type Result<T> = std::result::Result<T, Error>;

/// An XML well-formedness or syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// Classification of parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof(&'static str),
    /// A construct was syntactically malformed.
    Malformed(&'static str),
    /// Closing tag name did not match the open element.
    MismatchedTag {
        /// The element that was open.
        expected: String,
        /// The closing tag that arrived.
        found: String,
    },
    /// A closing tag appeared with no element open.
    UnopenedTag(String),
    /// The document ended while elements were still open.
    UnclosedElements(usize),
    /// An entity reference could not be resolved.
    BadEntity(String),
    /// The document has no root element or trailing garbage.
    BadDocumentStructure(&'static str),
}

impl Error {
    pub(crate) fn new(offset: usize, kind: ErrorKind) -> Self {
        Self { offset, kind }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: ", self.offset)?;
        match &self.kind {
            ErrorKind::UnexpectedEof(what) => write!(f, "unexpected end of input in {what}"),
            ErrorKind::Malformed(what) => write!(f, "malformed {what}"),
            ErrorKind::MismatchedTag { expected, found } => {
                write!(f, "mismatched closing tag: expected </{expected}>, found </{found}>")
            }
            ErrorKind::UnopenedTag(name) => write!(f, "closing tag </{name}> with no open element"),
            ErrorKind::UnclosedElements(n) => write!(f, "{n} element(s) left open at end of input"),
            ErrorKind::BadEntity(ent) => write!(f, "unknown or malformed entity &{ent};"),
            ErrorKind::BadDocumentStructure(what) => write!(f, "bad document structure: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offset_and_cause() {
        let err = Error::new(17, ErrorKind::Malformed("start tag"));
        let text = err.to_string();
        assert!(text.contains("17"));
        assert!(text.contains("start tag"));
    }

    #[test]
    fn display_mismatched_tag() {
        let err = Error::new(
            0,
            ErrorKind::MismatchedTag { expected: "book".into(), found: "year".into() },
        );
        let text = err.to_string();
        assert!(text.contains("</book>"));
        assert!(text.contains("</year>"));
    }
}
