//! Entity escaping and unescaping.

use std::borrow::Cow;

/// Replaces the five predefined entities and numeric character references
/// in `text`. Returns a borrowed slice when no entity occurs (the common
/// case for corpus text), avoiding an allocation per text node.
pub fn unescape(text: &str) -> Result<Cow<'_, str>, String> {
    if !text.contains('&') {
        return Ok(Cow::Borrowed(text));
    }
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos + 1..];
        let semi = rest.find(';').ok_or_else(|| truncate_entity(rest))?;
        let entity = &rest[..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| entity.to_owned())?;
                out.push(char::from_u32(code).ok_or_else(|| entity.to_owned())?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| entity.to_owned())?;
                out.push(char::from_u32(code).ok_or_else(|| entity.to_owned())?);
            }
            _ => return Err(entity.to_owned()),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

fn truncate_entity(rest: &str) -> String {
    rest.chars().take(12).collect()
}

/// Escapes text content: `&`, `<`, `>`.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    escape_with(text, false)
}

/// Escapes attribute values: text escapes plus `"`.
pub fn escape_attr(text: &str) -> Cow<'_, str> {
    escape_with(text, true)
}

fn escape_with(text: &str, quotes: bool) -> Cow<'_, str> {
    let needs = text.bytes().any(|b| b == b'&' || b == b'<' || b == b'>' || (quotes && b == b'"'));
    if !needs {
        return Cow::Borrowed(text);
    }
    let mut out = String::with_capacity(text.len() + 8);
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if quotes => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unescape_passthrough_borrows() {
        let result = unescape("plain text").unwrap();
        assert!(matches!(result, Cow::Borrowed(_)));
        assert_eq!(result, "plain text");
    }

    #[test]
    fn unescape_predefined_entities() {
        assert_eq!(
            unescape("a &amp; b &lt; c &gt; d &apos;e&apos; &quot;f&quot;").unwrap(),
            "a & b < c > d 'e' \"f\""
        );
    }

    #[test]
    fn unescape_numeric_references() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("&unterminated").is_err());
        assert!(unescape("&#xZZ;").is_err());
    }

    #[test]
    fn escape_roundtrip() {
        let original = "Mellon & Grant <eds.> \"1993\"";
        let escaped = escape_attr(original);
        assert_eq!(unescape(&escaped).unwrap(), original);
    }

    #[test]
    fn escape_text_leaves_quotes() {
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
        assert_eq!(escape_attr("say \"hi\""), "say &quot;hi&quot;");
    }
}
