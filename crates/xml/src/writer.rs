//! XML serialization with correct escaping.

use std::io::{self, Write};

use crate::dom::{Element, Node};
use crate::escape::{escape_attr, escape_text};

/// Writes `element` (and its subtree) to `out` with no added whitespace.
///
/// Output re-parses to an equal DOM: `Document::parse(written).root ==
/// *element` — the property the generator crate relies on.
pub fn write_element<W: Write>(out: &mut W, element: &Element) -> io::Result<()> {
    write!(out, "<{}", element.name)?;
    for (key, value) in &element.attrs {
        write!(out, " {}=\"{}\"", key, escape_attr(value))?;
    }
    if element.children.is_empty() {
        return write!(out, "/>");
    }
    write!(out, ">")?;
    for child in &element.children {
        match child {
            Node::Element(el) => write_element(out, el)?,
            Node::Text(text) => write!(out, "{}", escape_text(text))?,
        }
    }
    write!(out, "</{}>", element.name)
}

/// Convenience: serializes to a `String`.
pub fn element_to_string(element: &Element) -> String {
    let mut buf = Vec::new();
    write_element(&mut buf, element).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("writer emits UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    #[test]
    fn simple_serialization() {
        let el = Element::new("book")
            .with_attr("id", "3")
            .with_child(Element::new("title").with_text("A & B"))
            .with_child(Element::new("note"));
        assert_eq!(
            element_to_string(&el),
            r#"<book id="3"><title>A &amp; B</title><note/></book>"#
        );
    }

    #[test]
    fn roundtrip_with_special_chars() {
        let el = Element::new("a").with_attr("q", "x \"y\" <z>").with_text("1 < 2 & 3 > 2");
        let written = element_to_string(&el);
        let reparsed = Document::parse(&written).unwrap();
        assert_eq!(reparsed.root, el);
    }

    #[test]
    fn roundtrip_nested() {
        let el = Element::new("dblp").with_child(
            Element::new("book")
                .with_child(Element::new("author").with_text("Suciu"))
                .with_child(Element::new("author").with_text("Sudarshan"))
                .with_child(Element::new("year").with_text("1993")),
        );
        let reparsed = Document::parse(&element_to_string(&el)).unwrap();
        assert_eq!(reparsed.root, el);
    }
}
