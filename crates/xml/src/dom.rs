//! A small owned DOM on top of the pull parser.
//!
//! The tree-building code in `twig-tree` consumes [`Reader`] events
//! directly for large corpora; the DOM here is for tests, examples and
//! small documents where convenience beats streaming.

use crate::error::{Error, ErrorKind, Result};
use crate::reader::{Event, Reader};

/// A parsed document: prolog is discarded, only the root element is kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The root element.
    pub root: Element,
}

/// An element with attributes and ordered children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// A text run (entities already resolved).
    Text(String),
}

impl Document {
    /// Parses a complete document.
    pub fn parse(input: &str) -> Result<Self> {
        let mut reader = Reader::new(input);
        let mut stack: Vec<Element> = Vec::new();
        let mut root: Option<Element> = None;
        while let Some(event) = reader.next()? {
            match event {
                Event::Start { name, attrs, .. } => {
                    stack.push(Element {
                        name: name.to_owned(),
                        attrs: attrs
                            .into_iter()
                            .map(|(k, v)| (k.to_owned(), v.into_owned()))
                            .collect(),
                        children: Vec::new(),
                    });
                }
                Event::End { .. } => {
                    let done = stack.pop().expect("reader guarantees balance");
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(Node::Element(done)),
                        None => root = Some(done),
                    }
                }
                Event::Text(text) => match stack.last_mut() {
                    Some(parent) => parent.children.push(Node::Text(text.into_owned())),
                    None => unreachable!("reader rejects text outside root"),
                },
            }
        }
        root.map(|root| Document { root }).ok_or_else(|| {
            Error::new(input.len(), ErrorKind::BadDocumentStructure("no root element"))
        })
    }
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Builder-style: adds an attribute.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Builder-style: appends a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: appends a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Iterates child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|node| match node {
            Node::Element(el) => Some(el),
            Node::Text(_) => None,
        })
    }

    /// Concatenated text content of direct text children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(text) = node {
                out.push_str(text);
            }
        }
        out
    }

    /// First child element with the given name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|el| el.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_nested_structure() {
        let doc = Document::parse("<dblp><book><title>TP</title><year>1993</year></book></dblp>")
            .unwrap();
        assert_eq!(doc.root.name, "dblp");
        let book = doc.root.find("book").unwrap();
        assert_eq!(book.find("title").unwrap().text(), "TP");
        assert_eq!(book.find("year").unwrap().text(), "1993");
    }

    #[test]
    fn attributes_preserved() {
        let doc = Document::parse(r#"<a k="v"><b x="1" y="2"/></a>"#).unwrap();
        assert_eq!(doc.root.attrs, vec![("k".to_owned(), "v".to_owned())]);
        let b = doc.root.find("b").unwrap();
        assert_eq!(b.attrs.len(), 2);
    }

    #[test]
    fn builder_roundtrip() {
        let el = Element::new("book")
            .with_attr("id", "7")
            .with_child(Element::new("title").with_text("X"))
            .with_child(Element::new("year").with_text("2000"));
        assert_eq!(el.child_elements().count(), 2);
        assert_eq!(el.find("year").unwrap().text(), "2000");
        assert_eq!(el.find("missing"), None);
    }

    #[test]
    fn text_concatenates_runs() {
        let doc = Document::parse("<a>one<b/>two</a>").unwrap();
        assert_eq!(doc.root.text(), "onetwo");
    }

    #[test]
    fn parse_propagates_errors() {
        assert!(Document::parse("<a><b></a>").is_err());
    }
}
