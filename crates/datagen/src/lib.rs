//! Synthetic corpora and query workloads for the experiments.
//!
//! The paper evaluates on two proprietary snapshots — the DBLP
//! bibliography (50 MB, shallow wide records, duplicate `author` siblings)
//! and SWISS-PROT (5 MB, far more complex structure). Neither snapshot is
//! redistributable, so this crate generates synthetic stand-ins that
//! reproduce the properties the estimators are sensitive to (see
//! DESIGN.md §4):
//!
//! - [`dblp`]: bibliography records whose fields are *correlated* through
//!   a latent research-community variable (author pool ↔ venue ↔ year
//!   range ↔ publisher), with Zipf-distributed authors and venues and
//!   1–5 `author` children per record (the multiset case),
//! - [`sprot`]: protein entries with deep taxonomy chains, nested
//!   reference blocks, feature tables and keyword lists — several times
//!   more distinct element labels than the DBLP-like set,
//! - [`workload`]: the paper's query workloads (Sec. 6.1): positive twig
//!   queries sampled from the data (2–5 paths, 2–4 internal nodes, 1–4
//!   leaf characters), negative queries glued from subpaths of different
//!   record instances, and trivial single-path queries.
//!
//! Everything is deterministic given a seed.

pub mod dblp;
pub mod names;
pub mod sprot;
pub mod workload;

pub use dblp::{generate_dblp, DblpConfig};
pub use sprot::{generate_sprot, SprotConfig};
pub use workload::{negative_query_candidates, positive_queries, trivial_queries, WorkloadConfig};
