//! The SWISS-PROT-like protein corpus generator.
//!
//! The paper uses SWISS-PROT as the "far more complex structure" contrast
//! to DBLP: many more distinct element labels, deeper nesting (taxonomy
//! lineages), and nested repeated blocks (references with author lists,
//! feature tables). Correlation model: each entry belongs to an organism
//! group that fixes its taxonomy chain, biases its keywords and feature
//! types, and selects the citation journal pool.

use twig_util::SplitMix64;

use crate::names::{FEATURE_TYPES, FIRST_NAMES, JOURNALS, KEYWORDS, LINEAGES, ORGANISMS, SURNAMES};

/// Configuration for [`generate_sprot`].
#[derive(Debug, Clone)]
pub struct SprotConfig {
    /// Approximate output size in bytes.
    pub target_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SprotConfig {
    fn default() -> Self {
        Self { target_bytes: 4 << 20, seed: 1789 }
    }
}

fn push_field(out: &mut String, tag: &str, value: &str) {
    out.push('<');
    out.push_str(tag);
    out.push('>');
    debug_assert!(!value.contains(['<', '>', '&']));
    out.push_str(value);
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}

const AMINO: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";

/// Generates the SWISS-PROT-like XML document.
pub fn generate_sprot(cfg: &SprotConfig) -> String {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut out = String::with_capacity(cfg.target_bytes + 8192);
    out.push_str("<sprot>");
    let mut entry_no = 0u32;
    while out.len() < cfg.target_bytes {
        entry_no += 1;
        let organism_idx = rng.index(ORGANISMS.len());
        let lineage = LINEAGES[organism_idx % LINEAGES.len()];
        out.push_str("<entry>");
        push_field(
            &mut out,
            "id",
            &format!("P{entry_no:05}_{}", &ORGANISMS[organism_idx][..2].to_uppercase()),
        );
        for _ in 0..rng.usize_in(1, 3) {
            push_field(&mut out, "accession", &format!("Q{:05}", rng.u32_in(0, 99_999)));
        }
        push_field(
            &mut out,
            "created",
            &format!("{}-{:02}", rng.u32_in(1988, 2000), rng.u32_in(1, 12)),
        );
        push_field(
            &mut out,
            "description",
            &format!(
                "{} {}",
                KEYWORDS[rng.index(KEYWORDS.len())],
                ["precursor", "fragment", "isoform", "homolog", "subunit"][rng.index(5)]
            ),
        );
        push_field(
            &mut out,
            "gene",
            &format!("{}{}", ["ab", "cd", "ef", "gh", "rp", "ss"][rng.index(6)], rng.u32_in(1, 29)),
        );

        // Organism block with a deep taxonomy chain (nested taxon elements).
        out.push_str("<organism>");
        push_field(&mut out, "species", ORGANISMS[organism_idx]);
        out.push_str("<lineage>");
        for taxon in lineage {
            out.push_str("<taxon>");
            push_field(&mut out, "name", taxon);
        }
        for _ in lineage {
            out.push_str("</taxon>");
        }
        out.push_str("</lineage></organism>");

        // Reference blocks: nested author lists + venue.
        for ref_no in 1..=rng.u32_in(1, 4) {
            out.push_str("<reference>");
            push_field(&mut out, "position", &ref_no.to_string());
            out.push_str("<authors>");
            for _ in 0..rng.usize_in(1, 6) {
                push_field(
                    &mut out,
                    "person",
                    &format!(
                        "{} {}",
                        FIRST_NAMES[rng.index(FIRST_NAMES.len())],
                        SURNAMES[rng.index(SURNAMES.len())]
                    ),
                );
            }
            out.push_str("</authors>");
            // Journal pool biased by organism group.
            let journal = JOURNALS[(organism_idx + rng.index(3)) % JOURNALS.len()];
            out.push_str("<citation>");
            push_field(&mut out, "journal", journal);
            push_field(&mut out, "year", &rng.u32_in(1975, 2000).to_string());
            push_field(&mut out, "volume", &rng.u32_in(1, 299).to_string());
            out.push_str("</citation></reference>");
        }

        // Keywords biased by organism group: first from a group slice,
        // rest global.
        let kw_base = (organism_idx * 3) % KEYWORDS.len();
        for k in 0..rng.usize_in(1, 5) {
            let idx = if k == 0 { kw_base } else { rng.index(KEYWORDS.len()) };
            push_field(&mut out, "keyword", KEYWORDS[idx]);
        }

        // Feature table.
        for _ in 0..rng.usize_in(0, 6) {
            out.push_str("<feature>");
            let ft_idx = if rng.index(2) == 0 {
                (organism_idx * 2) % FEATURE_TYPES.len()
            } else {
                rng.index(FEATURE_TYPES.len())
            };
            push_field(&mut out, "type", FEATURE_TYPES[ft_idx]);
            let from = rng.u32_in(1, 899);
            push_field(&mut out, "from", &from.to_string());
            push_field(&mut out, "to", &(from + rng.u32_in(1, 79)).to_string());
            out.push_str("</feature>");
        }

        // Sequence summary.
        out.push_str("<sequence>");
        let length = rng.u32_in(80, 1199);
        push_field(&mut out, "length", &length.to_string());
        push_field(&mut out, "weight", &(length * 110 + rng.u32_in(0, 999)).to_string());
        let mut fragment = String::with_capacity(30);
        for _ in 0..30 {
            fragment.push(AMINO[rng.index(AMINO.len())] as char);
        }
        push_field(&mut out, "fragment", &fragment);
        out.push_str("</sequence></entry>");
    }
    out.push_str("</sprot>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_tree::DataTree;

    #[test]
    fn generates_parseable_xml() {
        let cfg = SprotConfig { target_bytes: 150_000, seed: 2 };
        let xml = generate_sprot(&cfg);
        assert!(xml.len() >= 150_000);
        let tree = DataTree::from_xml(&xml).expect("well-formed");
        assert!(tree.element_count() > 1000);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SprotConfig { target_bytes: 60_000, seed: 11 };
        assert_eq!(generate_sprot(&cfg), generate_sprot(&cfg));
    }

    #[test]
    fn more_labels_than_dblp() {
        let sprot =
            DataTree::from_xml(&generate_sprot(&SprotConfig { target_bytes: 150_000, seed: 3 }))
                .unwrap();
        let dblp = DataTree::from_xml(&crate::generate_dblp(&crate::DblpConfig {
            target_bytes: 150_000,
            seed: 3,
            ..Default::default()
        }))
        .unwrap();
        assert!(
            sprot.interner().len() > dblp.interner().len() + 5,
            "sprot {} vs dblp {}",
            sprot.interner().len(),
            dblp.interner().len()
        );
    }

    #[test]
    fn taxonomy_chains_are_nested() {
        let tree =
            DataTree::from_xml(&generate_sprot(&SprotConfig { target_bytes: 60_000, seed: 4 }))
                .unwrap();
        let taxon = tree.symbol("taxon").unwrap();
        // Some taxon must contain another taxon (nesting).
        let nested = tree
            .nodes_with_label(taxon)
            .iter()
            .any(|&t| tree.children(t).any(|c| tree.element_symbol(c) == Some(taxon)));
        assert!(nested, "lineage taxa are not nested");
    }

    #[test]
    fn deeper_than_dblp() {
        let tree =
            DataTree::from_xml(&generate_sprot(&SprotConfig { target_bytes: 60_000, seed: 5 }))
                .unwrap();
        let mut max_depth = 0;
        tree.for_each_root_to_leaf_path(|path| max_depth = max_depth.max(path.len()));
        assert!(max_depth >= 9, "max depth {max_depth}");
    }
}
