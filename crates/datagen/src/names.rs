//! Vocabularies for the synthetic corpora.

/// Surnames for authors (the prefix distribution matters: the workloads
/// sample 1–4 character prefixes, so names sharing prefixes like
/// "Su"/"Sud" exercise the value-prefix trie the way DBLP does).
pub const SURNAMES: &[&str] = &[
    "Suciu",
    "Sudarshan",
    "Srivastava",
    "Stonebraker",
    "Samet",
    "Sagiv",
    "Silberschatz",
    "Jagadish",
    "Johnson",
    "Jones",
    "Jensen",
    "Jarke",
    "Koudas",
    "Korn",
    "Kanne",
    "Kossmann",
    "Kersten",
    "Kifer",
    "Muthukrishnan",
    "Mendelzon",
    "Mumick",
    "Mohan",
    "Maier",
    "Motwani",
    "Ng",
    "Naughton",
    "Navathe",
    "Nestorov",
    "Chen",
    "Chaudhuri",
    "Chamberlin",
    "Carey",
    "Ceri",
    "Codd",
    "Widom",
    "Wiederhold",
    "Wong",
    "Wood",
    "Abiteboul",
    "Aho",
    "Agrawal",
    "Afrati",
    "Bernstein",
    "Buneman",
    "Bancilhon",
    "Beeri",
    "Gray",
    "Garcia",
    "Gupta",
    "Gottlob",
    "DeWitt",
    "Dayal",
    "Delobel",
    "Fernandez",
    "Florescu",
    "Fagin",
    "Franklin",
    "Halevy",
    "Hellerstein",
    "Hull",
    "Haas",
    "Ioannidis",
    "Imielinski",
    "Lenzerini",
    "Libkin",
    "Lomet",
    "Levy",
    "Ullman",
    "Vardi",
    "Vianu",
    "Valduriez",
    "Ramakrishnan",
    "Raghavan",
    "Reuter",
    "Rosenthal",
    "Tannen",
    "Tsichritzis",
    "Ozsu",
    "Papadimitriou",
    "Pirahesh",
    "Quass",
    "Zaniolo",
    "Zdonik",
    "Yannakakis",
    "Yu",
];

/// First names (used in author strings "First Last").
pub const FIRST_NAMES: &[&str] = &[
    "Serge", "Rakesh", "Philip", "Michael", "David", "Jennifer", "Hector", "Jeffrey", "Dan",
    "Divesh", "Nick", "Flip", "Raymond", "Zhiyuan", "Mary", "Alin", "Daniela", "Laura", "Victor",
    "Moshe", "Umesh", "Peter", "Raghu", "Ioana", "Wenfei", "Limsoon", "Timos", "Gerhard", "Guido",
    "Catriel", "Anthony", "Yannis", "Christos", "Renee", "Sophie", "Val",
];

/// Journal names.
pub const JOURNALS: &[&str] = &[
    "TODS",
    "VLDB Journal",
    "SIGMOD Record",
    "TKDE",
    "Information Systems",
    "JACM",
    "Data Engineering Bulletin",
    "Acta Informatica",
    "JCSS",
    "Theoretical Computer Science",
    "Distributed and Parallel Databases",
    "Knowledge and Information Systems",
];

/// Conference names (booktitle).
pub const CONFERENCES: &[&str] = &[
    "SIGMOD Conference",
    "VLDB",
    "ICDE",
    "PODS",
    "EDBT",
    "ICDT",
    "CIKM",
    "SSDBM",
    "WebDB",
    "DASFAA",
    "ADBIS",
    "IDEAL",
];

/// Book publishers.
pub const PUBLISHERS: &[&str] = &[
    "Morgan Kaufmann",
    "Addison-Wesley",
    "Springer",
    "Prentice Hall",
    "McGraw-Hill",
    "Academic Press",
    "MIT Press",
    "Cambridge University Press",
];

/// Title vocabulary (drawn per community so that title words correlate
/// with venues the way real sub-areas do).
pub const TITLE_WORDS: &[&str] = &[
    "query",
    "optimization",
    "selectivity",
    "estimation",
    "indexing",
    "histograms",
    "aggregation",
    "views",
    "materialized",
    "semistructured",
    "XML",
    "relational",
    "transactions",
    "concurrency",
    "recovery",
    "logging",
    "spatial",
    "temporal",
    "streams",
    "sampling",
    "sketches",
    "wavelets",
    "mining",
    "association",
    "clustering",
    "classification",
    "warehouse",
    "OLAP",
    "cube",
    "parallel",
    "distributed",
    "replication",
    "mediation",
    "integration",
    "wrappers",
    "schema",
    "matching",
    "storage",
    "compression",
    "caching",
    "joins",
    "nested",
    "recursive",
    "datalog",
    "constraints",
    "dependencies",
    "normalization",
    "design",
    "evolution",
    "versioning",
    "workflow",
    "access",
    "control",
    "security",
    "privacy",
    "approximate",
    "answers",
    "ranking",
    "top-k",
    "similarity",
];

/// Organism names for the SWISS-PROT-like corpus.
pub const ORGANISMS: &[&str] = &[
    "Homo sapiens",
    "Mus musculus",
    "Rattus norvegicus",
    "Escherichia coli",
    "Saccharomyces cerevisiae",
    "Drosophila melanogaster",
    "Caenorhabditis elegans",
    "Arabidopsis thaliana",
    "Bacillus subtilis",
    "Danio rerio",
    "Gallus gallus",
    "Xenopus laevis",
    "Oryza sativa",
    "Zea mays",
    "Bos taurus",
    "Sus scrofa",
];

/// Taxonomy chains (kingdom → phylum → class → order), one per organism
/// group; the deep nesting is what makes the corpus "complex".
pub const LINEAGES: &[&[&str]] = &[
    &["Eukaryota", "Metazoa", "Chordata", "Mammalia", "Primates"],
    &["Eukaryota", "Metazoa", "Chordata", "Mammalia", "Rodentia"],
    &["Bacteria", "Proteobacteria", "Gammaproteobacteria", "Enterobacterales"],
    &["Eukaryota", "Fungi", "Ascomycota", "Saccharomycetes"],
    &["Eukaryota", "Metazoa", "Arthropoda", "Insecta", "Diptera"],
    &["Eukaryota", "Metazoa", "Nematoda", "Chromadorea"],
    &["Eukaryota", "Viridiplantae", "Streptophyta", "Brassicales"],
    &["Bacteria", "Firmicutes", "Bacilli", "Bacillales"],
    &["Eukaryota", "Metazoa", "Chordata", "Actinopterygii"],
    &["Eukaryota", "Metazoa", "Chordata", "Aves", "Galliformes"],
];

/// Protein keywords.
pub const KEYWORDS: &[&str] = &[
    "Hydrolase",
    "Transferase",
    "Kinase",
    "Oxidoreductase",
    "Ligase",
    "Isomerase",
    "Lyase",
    "Membrane",
    "Transmembrane",
    "Signal",
    "Glycoprotein",
    "Phosphoprotein",
    "Zinc-finger",
    "DNA-binding",
    "RNA-binding",
    "ATP-binding",
    "GTP-binding",
    "Calcium",
    "Iron",
    "Heme",
    "Mitochondrion",
    "Nucleus",
    "Cytoplasm",
    "Secreted",
    "Repeat",
    "Transport",
    "Receptor",
];

/// Feature table types.
pub const FEATURE_TYPES: &[&str] = &[
    "DOMAIN", "CHAIN", "SIGNAL", "TRANSMEM", "ACT_SITE", "BINDING", "METAL", "MOD_RES", "DISULFID",
    "HELIX", "STRAND", "TURN", "VARIANT", "CONFLICT", "REPEAT",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_nonempty_and_distinct() {
        for vocab in [SURNAMES, FIRST_NAMES, JOURNALS, CONFERENCES, PUBLISHERS, TITLE_WORDS] {
            assert!(!vocab.is_empty());
            let mut sorted: Vec<&str> = vocab.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), vocab.len(), "duplicate vocabulary entry");
        }
    }

    #[test]
    fn surnames_share_prefixes() {
        // The value-prefix experiments need names with common prefixes.
        let su: Vec<&&str> = SURNAMES.iter().filter(|n| n.starts_with("Su")).collect();
        assert!(su.len() >= 2);
    }

    #[test]
    fn lineages_are_deep() {
        for lineage in LINEAGES {
            assert!(lineage.len() >= 4);
        }
    }
}
