//! Query workload generation (Sec. 6.1).
//!
//! - **Positive** queries are sampled from the data: pick a record-region
//!   node, walk 2–5 random downward paths of 2–4 internal nodes, and take
//!   a 1–4 character prefix of the reached leaf value. Sampled queries
//!   have at least one match by construction.
//! - **Trivial** queries are the single-path special case.
//! - **Negative** candidates glue subpaths sampled from *different*
//!   instances of the same root label; most have true count 0, and the
//!   harness filters with the exact counter (this crate does not depend
//!   on `twig-exact`).

use twig_tree::{DataTree, NodeId, Twig, TwigNodeId};
use twig_util::FxHashMap;
use twig_util::SplitMix64;

/// Workload shape parameters (defaults follow the paper).
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries to produce.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Paths per query, inclusive range.
    pub paths: (usize, usize),
    /// Internal (element) nodes per path, inclusive range.
    pub internal: (usize, usize),
    /// Leaf value prefix length, inclusive range.
    pub leaf_chars: (usize, usize),
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self { count: 1000, seed: 99, paths: (2, 5), internal: (2, 4), leaf_chars: (1, 4) }
    }
}

fn element_children(tree: &DataTree, node: NodeId) -> Vec<NodeId> {
    tree.children(node).filter(|&c| tree.element_symbol(c).is_some()).collect()
}

/// Walks a random downward element path of exactly `depth` nodes starting
/// at `start` (inclusive). Returns `None` when the subtree is too shallow.
fn random_path(
    tree: &DataTree,
    rng: &mut SplitMix64,
    start: NodeId,
    depth: usize,
) -> Option<Vec<NodeId>> {
    let mut path = vec![start];
    let mut cursor = start;
    for _ in 1..depth {
        let kids = element_children(tree, cursor);
        if kids.is_empty() {
            return None;
        }
        cursor = kids[rng.index(kids.len())];
        path.push(cursor);
    }
    Some(path)
}

/// The leaf value reached below the last element of `path`, if any.
fn leaf_value(tree: &DataTree, node: NodeId) -> Option<String> {
    tree.children(node).find_map(|c| tree.text(c)).map(str::to_owned)
}

fn char_prefix(value: &str, chars: usize) -> String {
    value.chars().take(chars).collect()
}

/// Builds a twig from data paths that all start at the same data node,
/// merging shared data-node prefixes (two paths through *different*
/// same-labeled children stay separate — the multiset query case).
fn twig_from_paths(tree: &DataTree, paths: &[Vec<NodeId>], leaves: &[Option<String>]) -> Twig {
    let root_sym = tree.element_symbol(paths[0][0]).expect("paths start at elements");
    let mut twig = Twig::with_root_element(tree.label_str(root_sym));
    let mut node_map: FxHashMap<NodeId, TwigNodeId> = FxHashMap::default();
    node_map.insert(paths[0][0], twig.root());
    // A data element has at most one text leaf, so a twig node may carry
    // at most one value child; when two sampled paths converge on the same
    // data node, keep the longer prefix (both are prefixes of one value).
    let mut values: FxHashMap<TwigNodeId, String> = FxHashMap::default();
    for (path, leaf) in paths.iter().zip(leaves) {
        let mut parent_twig = twig.root();
        for &data_node in &path[1..] {
            parent_twig = match node_map.get(&data_node) {
                Some(&existing) => existing,
                None => {
                    let sym = tree.element_symbol(data_node).expect("element path");
                    let id = twig.add_element(parent_twig, tree.label_str(sym));
                    node_map.insert(data_node, id);
                    id
                }
            };
        }
        if let Some(prefix) = leaf {
            let entry = values.entry(parent_twig).or_default();
            if prefix.len() > entry.len() {
                *entry = prefix.clone();
            }
        }
    }
    for (parent, value) in values {
        twig.add_value(parent, value);
    }
    twig
}

/// Candidate query roots: element nodes with at least one element child
/// (excluding text-only leaves); the document root is excluded so queries
/// describe record regions, not the whole corpus.
fn sample_roots(tree: &DataTree) -> Vec<NodeId> {
    tree.dfs()
        .filter(|&n| {
            n != tree.root()
                && tree.element_symbol(n).is_some()
                && !element_children(tree, n).is_empty()
        })
        .collect()
}

/// Generates up to `cfg.count` positive twig queries (each has ≥ 1 match
/// by construction). Returns fewer when the tree is too shallow to yield
/// enough distinct samples.
pub fn positive_queries(tree: &DataTree, cfg: &WorkloadConfig) -> Vec<Twig> {
    let mut rng = SplitMix64::new(cfg.seed);
    let roots = sample_roots(tree);
    assert!(!roots.is_empty(), "tree has no internal structure to sample");
    let mut out = Vec::with_capacity(cfg.count);
    let mut attempts = 0usize;
    while out.len() < cfg.count {
        attempts += 1;
        if attempts > cfg.count * 200 + 10_000 {
            break; // tree too shallow to yield more; return what we have
        }
        let root = roots[rng.index(roots.len())];
        // Half the queries get the sampled node's parent prepended, so the
        // branch node sits below the twig root (a root→branch segment —
        // the shape where the MOSH/PMOSH/MSH decompositions differ).
        let prefix: Option<NodeId> = if rng.index(2) == 0 {
            tree.parent(root).filter(|&p| tree.element_symbol(p).is_some())
        } else {
            None
        };
        let n_paths = rng.usize_in(cfg.paths.0, cfg.paths.1);
        let mut paths = Vec::with_capacity(n_paths);
        let mut leaves = Vec::with_capacity(n_paths);
        let mut ok = true;
        for _ in 0..n_paths {
            let budget = rng.usize_in(cfg.internal.0, cfg.internal.1);
            let depth = if prefix.is_some() { budget.saturating_sub(1).max(1) } else { budget };
            match random_path(tree, &mut rng, root, depth) {
                // Tolerate shallower paths than requested as long as the
                // path has at least 2 internal nodes.
                Some(mut path) => {
                    let leaf = leaf_value(tree, *path.last().expect("non-empty"));
                    let chars = rng.usize_in(cfg.leaf_chars.0, cfg.leaf_chars.1);
                    leaves.push(leaf.map(|v| char_prefix(&v, chars)));
                    if let Some(parent) = prefix {
                        path.insert(0, parent);
                    }
                    paths.push(path);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok || paths.len() < n_paths {
            continue;
        }
        let twig = twig_from_paths(tree, &paths, &leaves);
        // Queries must be non-trivial for the positive workload (at least
        // two distinct root-to-leaf paths after merging).
        if twig.root_to_leaf_paths().len() >= 2 {
            out.push(twig);
        }
    }
    out
}

/// Generates up to `cfg.count` trivial (single-path) queries (fewer when
/// the tree is too shallow).
pub fn trivial_queries(tree: &DataTree, cfg: &WorkloadConfig) -> Vec<Twig> {
    let single = WorkloadConfig { paths: (1, 1), ..cfg.clone() };
    let mut rng = SplitMix64::new(single.seed);
    let roots = sample_roots(tree);
    assert!(!roots.is_empty(), "tree has no internal structure to sample");
    let mut out = Vec::with_capacity(single.count);
    let mut attempts = 0usize;
    while out.len() < single.count {
        attempts += 1;
        if attempts > single.count * 200 + 10_000 {
            break; // tree too shallow to yield more; return what we have
        }
        let root = roots[rng.index(roots.len())];
        let depth = rng.usize_in(single.internal.0, single.internal.1);
        let Some(path) = random_path(tree, &mut rng, root, depth) else {
            continue;
        };
        let Some(value) = leaf_value(tree, *path.last().expect("non-empty")) else {
            continue;
        };
        let chars = rng.usize_in(single.leaf_chars.0, single.leaf_chars.1);
        let twig = twig_from_paths(tree, &[path], &[Some(char_prefix(&value, chars))]);
        out.push(twig);
    }
    out
}

/// Generates negative-query *candidates*: subpaths sampled from different
/// instances of the same root label, glued at the root. Callers must
/// filter with an exact counter — gluing usually but not always produces
/// count 0 (the paper's negative workload has true count exactly 0).
pub fn negative_query_candidates(tree: &DataTree, cfg: &WorkloadConfig) -> Vec<Twig> {
    let mut rng = SplitMix64::new(cfg.seed ^ 0x4E47); // "NG"
    let roots = sample_roots(tree);
    assert!(!roots.is_empty(), "tree has no internal structure to sample");
    // Group sampling roots by label so we can glue across instances.
    let mut by_label: FxHashMap<u32, Vec<NodeId>> = FxHashMap::default();
    for &r in &roots {
        by_label.entry(tree.element_symbol(r).expect("element").0).or_default().push(r);
    }
    let labels: Vec<u32> = by_label.iter().filter(|(_, v)| v.len() >= 2).map(|(&l, _)| l).collect();
    assert!(!labels.is_empty(), "no repeated record labels to glue across");
    let mut out = Vec::with_capacity(cfg.count);
    let mut attempts = 0usize;
    while out.len() < cfg.count {
        attempts += 1;
        if attempts > cfg.count * 500 + 10_000 {
            break; // caller will see fewer candidates
        }
        let label = labels[rng.index(labels.len())];
        let instances = &by_label[&label];
        let n_paths = rng.usize_in(cfg.paths.0, cfg.paths.1);
        // Sample each path from a different instance, then re-root all of
        // them onto the FIRST instance's node so the twig glues subpaths
        // that never co-occur.
        let mut paths: Vec<Vec<NodeId>> = Vec::with_capacity(n_paths);
        let mut leaves = Vec::with_capacity(n_paths);
        let mut ok = true;
        for _ in 0..n_paths {
            let inst = instances[rng.index(instances.len())];
            let depth = rng.usize_in(cfg.internal.0, cfg.internal.1);
            match random_path(tree, &mut rng, inst, depth) {
                Some(path) => {
                    let leaf = leaf_value(tree, *path.last().expect("non-empty"));
                    let chars = rng.usize_in(cfg.leaf_chars.0, cfg.leaf_chars.1);
                    leaves.push(leaf.map(|v| char_prefix(&v, chars)));
                    paths.push(path);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // Glue: build the twig with paths kept separate below the root
        // (no node merging except the root — they come from different
        // instances anyway).
        let root_label = {
            let sym = tree.element_symbol(paths[0][0]).expect("element");
            tree.label_str(sym).to_owned()
        };
        let mut twig = Twig::with_root_element(&root_label);
        for (path, leaf) in paths.iter().zip(&leaves) {
            let mut parent = twig.root();
            for &n in &path[1..] {
                let sym = tree.element_symbol(n).expect("element");
                parent = twig.add_element(parent, tree.label_str(sym));
            }
            if let Some(prefix) = leaf {
                twig.add_value(parent, prefix.clone());
            }
        }
        if twig.root_to_leaf_paths().len() >= 2 {
            out.push(twig);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::{generate_dblp, DblpConfig};
    use twig_exact_shim::count_presence;

    // Keep datagen free of a twig-exact dependency: a tiny local checker
    // is enough for tests (presence > 0 for positives).
    mod twig_exact_shim {
        use twig_tree::{DataTree, NodeId, Twig, TwigLabel, TwigNodeId};

        pub(super) fn count_presence(tree: &DataTree, twig: &Twig) -> u64 {
            let TwigLabel::Element(root_label) = twig.label(twig.root()) else {
                panic!("workload twigs have element roots")
            };
            let Some(sym) = tree.symbol(root_label) else {
                return 0;
            };
            tree.nodes_with_label(sym)
                .iter()
                .filter(|&&v| matches(tree, twig, twig.root(), v))
                .count() as u64
        }

        // Existence check with greedy sibling assignment backtracking.
        fn matches(tree: &DataTree, twig: &Twig, q: TwigNodeId, v: NodeId) -> bool {
            match twig.label(q) {
                TwigLabel::Value(p) => tree.text(v).is_some_and(|t| t.starts_with(p.as_str())),
                TwigLabel::Star => unreachable!("workloads have no wildcards"),
                TwigLabel::Element(name) => {
                    if tree.element_symbol(v).map(|s| tree.label_str(s)) != Some(name) {
                        return false;
                    }
                    let kids: Vec<NodeId> = tree.children(v).collect();
                    let qs = twig.children(q);
                    assign(tree, twig, qs, &kids, 0, &mut vec![false; kids.len()])
                }
            }
        }

        fn assign(
            tree: &DataTree,
            twig: &Twig,
            qs: &[TwigNodeId],
            kids: &[NodeId],
            i: usize,
            used: &mut Vec<bool>,
        ) -> bool {
            if i == qs.len() {
                return true;
            }
            for (j, &kid) in kids.iter().enumerate() {
                if !used[j] && matches(tree, twig, qs[i], kid) {
                    used[j] = true;
                    if assign(tree, twig, qs, kids, i + 1, used) {
                        used[j] = false;
                        return true;
                    }
                    used[j] = false;
                }
            }
            false
        }
    }

    fn tree() -> DataTree {
        DataTree::from_xml(&generate_dblp(&DblpConfig {
            target_bytes: 150_000,
            seed: 21,
            ..DblpConfig::default()
        }))
        .unwrap()
    }

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig { count: 40, ..WorkloadConfig::default() }
    }

    #[test]
    fn positive_queries_have_matches() {
        let tree = tree();
        let queries = positive_queries(&tree, &small_cfg());
        assert_eq!(queries.len(), 40);
        for q in &queries {
            assert!(count_presence(&tree, q) > 0, "positive query has no match: {q}");
        }
    }

    #[test]
    fn positive_queries_are_nontrivial() {
        let tree = tree();
        for q in positive_queries(&tree, &small_cfg()) {
            assert!(q.root_to_leaf_paths().len() >= 2, "{q}");
        }
    }

    #[test]
    fn positive_query_shape_within_bounds() {
        let tree = tree();
        let cfg = small_cfg();
        for q in positive_queries(&tree, &cfg) {
            let paths = q.root_to_leaf_paths();
            assert!(paths.len() <= cfg.paths.1, "{q}");
            for path in paths {
                let internals = path
                    .iter()
                    .filter(|&&n| matches!(q.label(n), twig_tree::TwigLabel::Element(_)))
                    .count();
                assert!(internals <= cfg.internal.1, "{q}");
            }
        }
    }

    #[test]
    fn trivial_queries_are_single_path() {
        let tree = tree();
        let queries = trivial_queries(&tree, &small_cfg());
        assert_eq!(queries.len(), 40);
        for q in &queries {
            assert!(q.is_single_path(), "{q}");
            assert!(count_presence(&tree, q) > 0, "trivial query has no match: {q}");
        }
    }

    #[test]
    fn negative_candidates_mostly_zero() {
        let tree = tree();
        let candidates = negative_query_candidates(&tree, &small_cfg());
        assert!(!candidates.is_empty());
        let zeros = candidates.iter().filter(|q| count_presence(&tree, q) == 0).count();
        // Gluing across instances should produce mostly-zero counts.
        assert!(
            zeros * 2 > candidates.len(),
            "only {zeros}/{} candidates are negative",
            candidates.len()
        );
    }

    #[test]
    fn workloads_are_deterministic() {
        let tree = tree();
        let a = positive_queries(&tree, &small_cfg());
        let b = positive_queries(&tree, &small_cfg());
        assert_eq!(
            a.iter().map(ToString::to_string).collect::<Vec<_>>(),
            b.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let tree = tree();
        let a = positive_queries(&tree, &small_cfg());
        let b = positive_queries(&tree, &WorkloadConfig { seed: 1234, ..small_cfg() });
        let a_strs: Vec<String> = a.iter().map(ToString::to_string).collect();
        let b_strs: Vec<String> = b.iter().map(ToString::to_string).collect();
        assert_ne!(a_strs, b_strs);
    }
}
