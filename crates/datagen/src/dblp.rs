//! The DBLP-like bibliography generator.
//!
//! Correlation model: every publication is drawn from a latent research
//! *community*. A community fixes an author pool (a Zipf-weighted slice of
//! the global author list), a couple of venues, a year window and — for
//! books — a publisher. Twig queries that combine an author with a year or
//! venue therefore have strongly non-independent selectivities, which is
//! exactly the regime where the paper's set-hash algorithms beat the
//! independence-based baselines.

use twig_util::SplitMix64;

use crate::names::{CONFERENCES, FIRST_NAMES, JOURNALS, PUBLISHERS, SURNAMES, TITLE_WORDS};

/// Configuration for [`generate_dblp`].
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Approximate size of the generated XML in bytes (generation stops at
    /// the first record boundary past this).
    pub target_bytes: usize,
    /// RNG seed; equal seeds produce byte-identical corpora.
    pub seed: u64,
    /// Number of latent communities (fewer → stronger correlations).
    pub communities: usize,
    /// Authors per community pool.
    pub pool_size: usize,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self { target_bytes: 8 << 20, seed: 42, communities: 16, pool_size: 12 }
    }
}

struct Community {
    authors: Vec<String>,
    journal: &'static str,
    conference: &'static str,
    publisher: &'static str,
    year_lo: u32,
    year_hi: u32,
    title_words: Vec<&'static str>,
}

fn build_communities(cfg: &DblpConfig, rng: &mut SplitMix64) -> Vec<Community> {
    (0..cfg.communities)
        .map(|community| {
            // Disjoint surname slices keep communities "pure": an author
            // name belongs to exactly one community, so author ↔ venue ↔
            // year correlations are strong — the property that separates
            // the set-hash algorithms from the independence baselines.
            let slice_size = SURNAMES.len().div_ceil(cfg.communities);
            let lo = (community * slice_size) % SURNAMES.len();
            let authors = (0..cfg.pool_size)
                .map(|i| {
                    format!(
                        "{} {}",
                        FIRST_NAMES[rng.index(FIRST_NAMES.len())],
                        SURNAMES[(lo + i % slice_size) % SURNAMES.len()]
                    )
                })
                .collect();
            let year_lo = rng.u32_in(1975, 1996);
            let title_words = (0..8).map(|_| TITLE_WORDS[rng.index(TITLE_WORDS.len())]).collect();
            Community {
                authors,
                journal: JOURNALS[community % JOURNALS.len()],
                conference: CONFERENCES[community % CONFERENCES.len()],
                publisher: PUBLISHERS[community % PUBLISHERS.len()],
                year_lo,
                year_hi: year_lo + rng.u32_in(2, 4),
                title_words,
            }
        })
        .collect()
}

/// Zipf-ish index into `0..n`: rank r with weight ∝ 1/(r+1).
fn zipf_index(rng: &mut SplitMix64, n: usize) -> usize {
    debug_assert!(n > 0);
    let harmonic: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut target = rng.f64_unit() * harmonic;
    for i in 0..n {
        target -= 1.0 / (i + 1) as f64;
        if target <= 0.0 {
            return i;
        }
    }
    n - 1
}

fn push_field(out: &mut String, tag: &str, value: &str) {
    out.push('<');
    out.push_str(tag);
    out.push('>');
    // Vocabulary values never contain XML-special characters; assert in
    // debug builds rather than paying escaping costs per field.
    debug_assert!(!value.contains(['<', '>', '&']));
    out.push_str(value);
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}

/// Generates the DBLP-like XML document.
pub fn generate_dblp(cfg: &DblpConfig) -> String {
    assert!(cfg.communities > 0 && cfg.pool_size > 0);
    let mut rng = SplitMix64::new(cfg.seed);
    let communities = build_communities(cfg, &mut rng);
    let mut out = String::with_capacity(cfg.target_bytes + 4096);
    out.push_str("<dblp>");
    while out.len() < cfg.target_bytes {
        let community = &communities[zipf_index(&mut rng, communities.len())];
        let kind_roll = rng.index(10);
        let tag = match kind_roll {
            0..=5 => "article",
            6..=8 => "inproceedings",
            _ => "book",
        };
        out.push('<');
        out.push_str(tag);
        out.push('>');
        // Authors: 1–5, Zipf within the community pool (multiset siblings).
        let author_count = 1 + rng.index(5).min(rng.index(5));
        let mut chosen: Vec<&str> = Vec::with_capacity(author_count);
        for _ in 0..author_count {
            let author = &community.authors[zipf_index(&mut rng, community.authors.len())];
            if !chosen.iter().any(|a| a == author) {
                chosen.push(author);
            }
        }
        for author in &chosen {
            push_field(&mut out, "author", author);
        }
        // Title: 3–7 community-biased words.
        let mut title = String::new();
        for w in 0..rng.usize_in(3, 7) {
            if w > 0 {
                title.push(' ');
            }
            title.push_str(community.title_words[rng.index(community.title_words.len())]);
        }
        push_field(&mut out, "title", &title);
        match tag {
            "article" => {
                push_field(&mut out, "journal", community.journal);
                push_field(&mut out, "volume", &rng.u32_in(1, 39).to_string());
            }
            "inproceedings" => {
                push_field(&mut out, "booktitle", community.conference);
            }
            _ => {
                push_field(&mut out, "publisher", community.publisher);
                push_field(
                    &mut out,
                    "isbn",
                    &format!("0-{:05}-{:03}-X", rng.u32_in(10_000, 99_998), rng.u32_in(100, 998)),
                );
            }
        }
        let year = rng.u32_in(community.year_lo, community.year_hi);
        push_field(&mut out, "year", &year.to_string());
        let page_lo = rng.u32_in(1, 799);
        push_field(&mut out, "pages", &format!("{}-{}", page_lo, page_lo + rng.u32_in(5, 39)));
        // Citation blocks (as in real DBLP — the paper's `cite.Stonebraker`
        // example): `author` and `year` recur under `cite`, and `cite`
        // occurs under both articles and inproceedings, so these labels
        // have multiple parent contexts with different value frequencies.
        if tag != "book" && rng.index(4) == 0 {
            for _ in 0..rng.usize_in(1, 2) {
                let cited = &communities[zipf_index(&mut rng, communities.len())];
                out.push_str("<cite>");
                push_field(
                    &mut out,
                    "author",
                    &cited.authors[zipf_index(&mut rng, cited.authors.len())],
                );
                push_field(&mut out, "year", &rng.u32_in(cited.year_lo, cited.year_hi).to_string());
                out.push_str("</cite>");
            }
        }
        out.push_str("</");
        out.push_str(tag);
        out.push('>');
    }
    out.push_str("</dblp>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_tree::DataTree;

    #[test]
    fn generates_parseable_xml_of_requested_size() {
        let cfg = DblpConfig { target_bytes: 100_000, seed: 1, ..DblpConfig::default() };
        let xml = generate_dblp(&cfg);
        assert!(xml.len() >= 100_000);
        assert!(xml.len() < 110_000, "overshoot bounded by one record");
        let tree = DataTree::from_xml(&xml).expect("well-formed");
        assert!(tree.element_count() > 1000);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DblpConfig { target_bytes: 50_000, seed: 7, ..DblpConfig::default() };
        assert_eq!(generate_dblp(&cfg), generate_dblp(&cfg));
        let other = DblpConfig { seed: 8, ..cfg };
        assert_ne!(generate_dblp(&cfg), generate_dblp(&other));
    }

    #[test]
    fn has_expected_structure() {
        let cfg = DblpConfig { target_bytes: 200_000, seed: 3, ..DblpConfig::default() };
        let tree = DataTree::from_xml(&generate_dblp(&cfg)).unwrap();
        for label in [
            "article",
            "inproceedings",
            "book",
            "author",
            "title",
            "year",
            "journal",
            "booktitle",
            "publisher",
            "pages",
        ] {
            let sym = tree.symbol(label).unwrap_or_else(|| panic!("missing {label}"));
            assert!(!tree.nodes_with_label(sym).is_empty(), "no {label} nodes");
        }
    }

    #[test]
    fn multiset_authors_present() {
        let cfg = DblpConfig { target_bytes: 200_000, seed: 3, ..DblpConfig::default() };
        let tree = DataTree::from_xml(&generate_dblp(&cfg)).unwrap();
        let author = tree.symbol("author").unwrap();
        // Some record must have ≥ 2 authors.
        let mut saw_multi = false;
        for &a in tree.nodes_with_label(author) {
            let parent = tree.parent(a).unwrap();
            let authors =
                tree.children(parent).filter(|&c| tree.element_symbol(c) == Some(author)).count();
            if authors >= 2 {
                saw_multi = true;
                break;
            }
        }
        assert!(saw_multi, "no multi-author records generated");
    }

    #[test]
    fn correlations_exist() {
        // A frequent author's records must concentrate on few venues —
        // the correlation the set-hash algorithms exploit.
        let cfg = DblpConfig { target_bytes: 400_000, seed: 5, ..DblpConfig::default() };
        let tree = DataTree::from_xml(&generate_dblp(&cfg)).unwrap();
        let author_sym = tree.symbol("author").unwrap();
        let journal_sym = tree.symbol("journal").unwrap();
        use std::collections::HashMap;
        let mut by_author: HashMap<String, Vec<String>> = HashMap::new();
        for &a in tree.nodes_with_label(author_sym) {
            let name = tree.text(tree.children(a).next().unwrap()).unwrap().to_owned();
            let record = tree.parent(a).unwrap();
            if let Some(j) =
                tree.children(record).find(|&c| tree.element_symbol(c) == Some(journal_sym))
            {
                let journal = tree.text(tree.children(j).next().unwrap()).unwrap().to_owned();
                by_author.entry(name).or_default().push(journal);
            }
        }
        // Take the most prolific author; their journals should be few.
        let (_, journals) =
            by_author.iter().max_by_key(|(_, v)| v.len()).expect("some author has articles");
        assert!(journals.len() >= 5, "not enough data to check correlation");
        let distinct: std::collections::HashSet<&String> = journals.iter().collect();
        assert!(
            distinct.len() <= journals.len() / 2,
            "author spread over too many journals: {} of {}",
            distinct.len(),
            journals.len()
        );
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = SplitMix64::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_index(&mut rng, 10)] += 1;
        }
        assert!(counts[0] > counts[9] * 4, "{counts:?}");
    }
}
