//! Sec. 6.5: summary construction time.
//!
//! The paper reports under 10 minutes on a Pentium II for all CSTs and
//! data sets; these benches measure the two construction phases (suffix
//! trie build and prune+signature pass) on the synthetic corpora.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use twig_core::{Cst, CstConfig, SpaceBudget};
use twig_datagen::{generate_dblp, DblpConfig};
use twig_pst::{build_suffix_trie, TrieConfig};
use twig_tree::DataTree;

fn corpus(bytes: usize) -> DataTree {
    let xml = generate_dblp(&DblpConfig { target_bytes: bytes, seed: 7, ..DblpConfig::default() });
    DataTree::from_xml(&xml).expect("well-formed")
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for &kb in &[256usize, 1024] {
        let tree = corpus(kb << 10);
        group.bench_with_input(BenchmarkId::new("suffix_trie", kb), &tree, |b, tree| {
            b.iter(|| black_box(build_suffix_trie(tree, &TrieConfig::default())));
        });
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        group.bench_with_input(
            BenchmarkId::new("prune_and_sign", kb),
            &(&tree, &trie),
            |b, (tree, trie)| {
                b.iter(|| {
                    black_box(Cst::from_trie(
                        tree,
                        trie,
                        &CstConfig {
                            budget: SpaceBudget::Fraction(0.05),
                            ..CstConfig::default()
                        },
                    ).expect("CST config is valid"))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("xml_parse", kb), &(kb << 10), |b, &bytes| {
            let xml = generate_dblp(&DblpConfig {
                target_bytes: bytes,
                seed: 7,
                ..DblpConfig::default()
            });
            b.iter(|| black_box(DataTree::from_xml(&xml).expect("well-formed")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
