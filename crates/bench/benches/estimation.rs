//! Sec. 6.5: estimation time — "about a millisecond for each algorithm".
//!
//! Benches one estimate call per algorithm over a fixed query mix, plus
//! the exact counter for contrast (the whole point of the summary is that
//! estimation is orders faster than counting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_datagen::{generate_dblp, positive_queries, DblpConfig, WorkloadConfig};
use twig_exact::count_occurrence;
use twig_tree::{DataTree, Twig};

fn fixture() -> (DataTree, Cst, Vec<Twig>) {
    let xml = generate_dblp(&DblpConfig {
        target_bytes: 1 << 20,
        seed: 11,
        ..DblpConfig::default()
    });
    let tree = DataTree::from_xml(&xml).expect("well-formed");
    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Fraction(0.10), ..CstConfig::default() },
    ).expect("CST config is valid");
    let queries = positive_queries(
        &tree,
        &WorkloadConfig { count: 32, seed: 3, ..WorkloadConfig::default() },
    );
    (tree, cst, queries)
}

fn bench_estimation(c: &mut Criterion) {
    let (tree, cst, queries) = fixture();
    let mut group = c.benchmark_group("estimation");
    for algo in Algorithm::ALL {
        group.bench_with_input(
            BenchmarkId::new("estimate", algo.name()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    for q in &queries {
                        black_box(cst.estimate(q, algo, CountKind::Occurrence));
                    }
                });
            },
        );
    }
    group.sample_size(10);
    group.bench_function("exact_count_baseline", |b| {
        b.iter(|| {
            for q in queries.iter().take(4) {
                black_box(count_occurrence(&tree, q));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
