//! Micro-benchmarks of the hot inner machinery: min-hash operations,
//! query parsing, and trie walks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use twig_core::{Cst, CstConfig, SpaceBudget};
use twig_datagen::{generate_dblp, DblpConfig};
use twig_sethash::{estimate_intersection, HashFamily, Signature};
use twig_tree::{DataTree, Twig};

fn bench_sethash(c: &mut Criterion) {
    let mut group = c.benchmark_group("sethash");
    for &len in &[32usize, 128] {
        let family = HashFamily::new(len, 0xBE);
        group.bench_with_input(BenchmarkId::new("build_1k", len), &len, |b, _| {
            b.iter(|| black_box(Signature::build(&family, 0..1_000)));
        });
        let a = Signature::build(&family, 0..1_000).truncate();
        let b_sig = Signature::build(&family, 500..1_500).truncate();
        group.bench_with_input(BenchmarkId::new("resemblance", len), &len, |b, _| {
            b.iter(|| black_box(Signature::resemblance(&[&a, &b_sig])));
        });
        group.bench_with_input(BenchmarkId::new("intersection", len), &len, |b, _| {
            b.iter(|| black_box(estimate_intersection(&[(&a, 1000), (&b_sig, 1000)])));
        });
    }
    group.finish();
}

fn bench_query_pipeline(c: &mut Criterion) {
    let xml = generate_dblp(&DblpConfig {
        target_bytes: 512 << 10,
        seed: 3,
        ..DblpConfig::default()
    });
    let tree = DataTree::from_xml(&xml).expect("well-formed");
    let cst = Cst::build(
        &tree,
        &CstConfig { budget: SpaceBudget::Fraction(0.10), ..CstConfig::default() },
    ).expect("CST config is valid");
    let mut group = c.benchmark_group("query");
    group.bench_function("twig_parse", |b| {
        b.iter(|| black_box(Twig::parse(r#"article(author("S"),journal("TODS"),year("199"))"#)))
    });
    group.bench_function("xpath_parse", |b| {
        b.iter(|| {
            black_box(twig_tree::parse_xpath(
                r#"/dblp/article[author="S"][journal="TODS"]/year"#,
            ))
        })
    });
    let twig = Twig::parse(r#"article(author("S"),journal("TODS"),year("199"))"#).unwrap();
    group.bench_function("explain", |b| {
        b.iter(|| {
            black_box(cst.explain(
                &twig,
                twig_core::Algorithm::Msh,
                twig_core::CountKind::Occurrence,
            ))
        })
    });
    let mut buffer = Vec::new();
    cst.write_to(&mut buffer).unwrap();
    group.bench_function("summary_deserialize", |b| {
        b.iter(|| black_box(Cst::read_from(&mut buffer.as_slice()).expect("valid")))
    });
    group.finish();
}

criterion_group!(benches, bench_sethash, bench_query_pipeline);
criterion_main!(benches);
