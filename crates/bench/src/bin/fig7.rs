//! Figure 7: negative queries, RMSE vs space. `fig7 dblp` or `fig7 sprot`.

use twig_bench::{print_expectation, print_series};
use twig_core::SignatureFallback;
use twig_eval::experiments::negative_experiment;
use twig_eval::{Corpus, Scale};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "dblp".to_owned());
    let scale = Scale::from_env();
    let (corpus, spaces): (Corpus, Vec<f64>) = match which.as_str() {
        "sprot" => (
            Corpus::sprot(scale.sprot_bytes, scale.seed),
            vec![0.02, 0.05, 0.10, 0.20, 0.30],
        ),
        _ => (
            Corpus::dblp(scale.dblp_bytes, scale.seed),
            vec![0.01, 0.02, 0.05, 0.10, 0.15, 0.20],
        ),
    };
    // Two passes: the paper-literal zero fallback (which reproduces the
    // figure's MOSH/MSH behavior) and the library default.
    let points = negative_experiment(&corpus, &scale, &spaces, SignatureFallback::Zero);
    print_series(
        &format!("fig7-negative-{}-zero-fallback", corpus.name),
        "RMSE",
        &points,
    );
    let points = negative_experiment(
        &corpus,
        &scale,
        &spaces,
        SignatureFallback::ConditionalIndependence,
    );
    print_series(
        &format!("fig7-negative-{}-default-fallback", corpus.name),
        "RMSE",
        &points,
    );
    print_expectation(
        "Greedy is good from the start (products of tiny counts); MOSH/MSH \
         improve quickly and win in the end; MO and Leaf are inaccurate due to \
         amplification by conditioning on small overlap counts; PMOSH is poor",
    );
}
