//! Figure 3: Leaf vs pure MO on trivial (single-path) queries, DBLP-like
//! corpus, average relative squared error vs space.

use twig_bench::{print_expectation, print_series};
use twig_eval::experiments::trivial_experiment;
use twig_eval::{Corpus, Scale};

fn main() {
    let scale = Scale::from_env();
    let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
    eprintln!(
        "corpus {} bytes, {} elements; {} queries",
        corpus.tree.source_bytes(),
        corpus.tree.element_count(),
        scale.queries
    );
    let spaces = [0.01, 0.02, 0.04, 0.07, 0.10];
    let points = trivial_experiment(&corpus, &scale, &spaces);
    print_series("fig3-trivial-dblp", "avg relative squared error", &points);
    print_expectation(
        "pure MO is up to a few orders of magnitude more accurate than Leaf — \
         path information matters even for single-path queries",
    );
}
