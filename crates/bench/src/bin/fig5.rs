//! Figure 5(a): estimate/real ratio distribution at one space budget;
//! Figure 5(b): % of queries parsed differently by MOSH and MSH.
//! Usage: `fig5 a` or `fig5 b`.

use twig_bench::print_expectation;
use twig_eval::experiments::{parse_divergence, ratio_distribution};
use twig_eval::metrics::RatioBuckets;
use twig_eval::{Corpus, Scale};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "a".to_owned());
    let scale = Scale::from_env();
    let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
    if which == "a" {
        let space = 0.10;
        println!("== fig5a: ratio distribution at {}% space, dblp ==", space * 100.0);
        print!("{:<8}", "algo");
        for label in RatioBuckets::LABELS {
            print!("{label:>8}");
        }
        println!();
        for (algo, buckets) in ratio_distribution(&corpus, &scale, space) {
            print!("{:<8}", algo.name());
            for pct in buckets.as_percentages() {
                print!("{pct:>7.1}%");
            }
            println!();
            let row: Vec<String> =
                buckets.as_percentages().iter().map(|p| format!("{p:.2}")).collect();
            println!("csv,fig5a,{},{}", algo.name(), row.join(","));
        }
        println!();
        print_expectation(
            "correlation-less algorithms underestimate >10x on >95% of queries; \
             MOSH/MSH estimate most queries within 50% of the real count",
        );
    } else {
        let spaces = [0.01, 0.02, 0.05, 0.10, 0.15, 0.20];
        println!("== fig5b: % of queries parsed differently by MOSH vs MSH, dblp ==");
        for (space, pct) in parse_divergence(&corpus, &scale, &spaces) {
            println!("space {:>5.1}%  divergent {pct:>5.1}%", space * 100.0);
            println!("csv,fig5b,{space},{pct:.3}");
        }
        println!();
        print_expectation("a small share of queries (roughly 1-4%) parse differently");
    }
}
