//! Figure 4: all six algorithms on positive non-trivial queries, average
//! relative squared error vs space. `fig4 dblp` or `fig4 sprot`.

use twig_bench::{print_expectation, print_series};
use twig_eval::experiments::positive_experiment;
use twig_eval::{Corpus, Scale};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "dblp".to_owned());
    let scale = Scale::from_env();
    let (corpus, spaces): (Corpus, Vec<f64>) = match which.as_str() {
        "sprot" => (
            Corpus::sprot(scale.sprot_bytes, scale.seed),
            vec![0.02, 0.05, 0.10, 0.20, 0.30],
        ),
        _ => (
            Corpus::dblp(scale.dblp_bytes, scale.seed),
            vec![0.01, 0.02, 0.05, 0.10, 0.15, 0.20],
        ),
    };
    eprintln!(
        "corpus {}: {} bytes, {} elements; {} queries",
        corpus.name,
        corpus.tree.source_bytes(),
        corpus.tree.element_count(),
        scale.queries
    );
    let (squared, relative) = positive_experiment(&corpus, &scale, &spaces);
    print_series(
        &format!("fig4-positive-{}-squared", corpus.name),
        "avg relative squared error",
        &squared,
    );
    print_series(
        &format!("fig4-positive-{}-relative", corpus.name),
        "avg relative error",
        &relative,
    );
    print_expectation(
        "MOSH and MSH improve sharply with space and overtake Greedy/Leaf/MO; \
         Greedy and MO are insensitive to space once query paths fit; \
         PMOSH is unstable; the complex corpus needs more space for the same accuracy",
    );
}
