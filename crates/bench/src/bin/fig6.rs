//! Figure 6(a): MOSH vs MSH error on differently-parsed queries;
//! Figure 6(b): scale-up — error at fixed space as data grows.
//! Usage: `fig6 a` or `fig6 b`.

use twig_bench::print_expectation;
use twig_eval::experiments::{divergent_error, scaleup};
use twig_eval::{Corpus, Scale};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "a".to_owned());
    let scale = Scale::from_env();
    if which == "a" {
        let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
        let spaces = [0.05, 0.10, 0.15];
        println!("== fig6a: MOSH vs MSH on differently-parsed queries, dblp ==");
        for (space, errors) in divergent_error(&corpus, &scale, &spaces) {
            match errors {
                Some((mosh, msh)) => {
                    println!(
                        "space {:>5.1}%  log10 err  MOSH {:>6.2}  MSH {:>6.2}",
                        space * 100.0,
                        mosh.max(1e-6).log10(),
                        msh.max(1e-6).log10()
                    );
                    println!("csv,fig6a,{space},{mosh:.4},{msh:.4}");
                }
                None => println!("space {:>5.1}%  (no divergent queries)", space * 100.0),
            }
        }
        println!();
        print_expectation("MSH substantially outperforms MOSH on the divergent queries");
    } else {
        let full = scale.dblp_bytes;
        let sizes: Vec<usize> =
            [1, 2, 4, 6, 8].iter().map(|&f| full * f / 8).collect();
        println!("== fig6b: scale-up at 10% space, dblp ==");
        for (bytes, points) in scaleup(&scale, &sizes, 0.10) {
            print!("size {:>6.1} MB |", bytes as f64 / 1048576.0);
            for p in &points {
                print!(" {} {:>5.2} |", p.algorithm.name(), p.log10_error);
            }
            println!();
            for p in &points {
                println!("csv,fig6b,{bytes},{},{:.4}", p.algorithm.name(), p.log10_error);
            }
        }
        println!();
        print_expectation(
            "MOSH and MSH improve as data grows (the unpruned structure grows \
             sublinearly while the budget grows linearly); the others show no clear trend",
        );
    }
}
