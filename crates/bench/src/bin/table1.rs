//! Table 1: qualitative properties of the six estimation algorithms.

use twig_core::Algorithm;

fn main() {
    println!("== Table 1: Estimation Algorithms ==");
    println!(
        "{:<8} {:<12} {:<12} {:<32} {:<12}",
        "Name", "Path Info", "Correlation", "Twiglets Formation", "Combination"
    );
    for algo in Algorithm::ALL {
        let (path, corr, twiglets, comb) = algo.properties();
        println!("{:<8} {:<12} {:<12} {:<32} {:<12}", algo.name(), path, corr, twiglets, comb);
    }
}
