//! Sec. 5 validation: occurrence estimation via the uniformity assumption.

use twig_bench::print_expectation;
use twig_eval::experiments::{occurrence_validation, WorkloadKind};
use twig_eval::{Corpus, Scale};

fn main() {
    let scale = Scale::from_env();
    let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
    println!("== occurrence estimation (Sec. 5), dblp, 10% space ==");
    for (kind, label) in [
        (WorkloadKind::Trivial, "trivial"),
        (WorkloadKind::Positive, "positive"),
    ] {
        let (presence_err, occurrence_err) =
            occurrence_validation(&corpus, &scale, 0.10, kind);
        println!(
            "{label:>9} workload: avg rel err — presence-as-occurrence {presence_err:.3}, \
             occurrence (uniformity) {occurrence_err:.3}"
        );
        println!("csv,occurrence,{label},{presence_err:.4},{occurrence_err:.4}");
    }
    println!();
    print_expectation(
        "the uniformity assumption makes occurrence estimates track multiset \
         ground truth closely (the paper's 2.9 -> 5.8 example)",
    );
}
