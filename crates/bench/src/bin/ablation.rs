//! Ablations (DESIGN.md §6): signature length sweep at a fixed byte
//! budget, and the value of signatures at all (MOSH vs the same summary
//! without signatures, i.e. conditional independence only).

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_eval::metrics::{avg_relative_error, avg_relative_squared_error};
use twig_eval::{Corpus, Scale, Workload};

fn main() {
    let scale = Scale::from_env();
    let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
    let workload = Workload::positive(&corpus, &scale);
    let budget = (corpus.tree.source_bytes() as f64 * 0.10) as usize;

    println!("== ablation 1: signature length at a fixed {budget}-byte budget ==");
    println!("(longer signatures resolve weaker correlations but buy fewer subpaths)");
    for sig_len in [8usize, 16, 32, 64, 128] {
        let cst = Cst::from_trie(
            &corpus.tree,
            &corpus.trie,
            &CstConfig {
                budget: SpaceBudget::Bytes(budget),
                signature_len: sig_len,
                ..CstConfig::default()
            },
        ).expect("CST config is valid");
        let estimates = workload.estimate_all(&cst, Algorithm::Mosh);
        let rel = avg_relative_error(&workload.truths, &estimates);
        let lsq = avg_relative_squared_error(&workload.truths, &estimates)
            .max(1e-6)
            .log10();
        println!(
            "L = {sig_len:>3}: nodes {:>6}  avg rel err {rel:>7.3}  log10 sq err {lsq:>6.2}",
            cst.node_count()
        );
        println!("csv,ablation-siglen,{sig_len},{},{rel:.4},{lsq:.4}", cst.node_count());
    }
    println!();

    println!("== ablation 2: are the signatures worth their bytes? ==");
    let with = Cst::from_trie(
        &corpus.tree,
        &corpus.trie,
        &CstConfig { budget: SpaceBudget::Bytes(budget), ..CstConfig::default() },
    ).expect("CST config is valid");
    let without = Cst::from_trie(
        &corpus.tree,
        &corpus.trie,
        &CstConfig {
            budget: SpaceBudget::Bytes(budget),
            with_signatures: false,
            ..CstConfig::default()
        },
    ).expect("CST config is valid");
    for (label, cst) in [("with signatures", &with), ("without (cond. indep.)", &without)] {
        let estimates: Vec<f64> = workload
            .queries
            .iter()
            .map(|q| cst.estimate(q, Algorithm::Mosh, CountKind::Occurrence))
            .collect();
        let rel = avg_relative_error(&workload.truths, &estimates);
        let lsq = avg_relative_squared_error(&workload.truths, &estimates)
            .max(1e-6)
            .log10();
        println!(
            "{label:<24} nodes {:>6}  avg rel err {rel:>7.3}  log10 sq err {lsq:>6.2}",
            cst.node_count()
        );
        println!("csv,ablation-signatures,{label},{},{rel:.4},{lsq:.4}", cst.node_count());
    }
}
