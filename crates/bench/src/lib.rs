//! Shared output formatting for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §5) and prints two blocks: a human-readable table and
//! machine-readable CSV lines prefixed with `csv,` for downstream
//! plotting. Run with `TWIG_SCALE=small` for a fast smoke pass.

use twig_core::Algorithm;
use twig_eval::experiments::SeriesPoint;

/// Formats an error-vs-space series as a table (rows = space fractions,
/// columns = algorithms, cells = log10 error) followed by CSV lines.
pub fn print_series(title: &str, metric: &str, points: &[SeriesPoint]) {
    println!("== {title} ==");
    println!("metric: log10({metric})");
    let mut spaces: Vec<f64> = points.iter().map(|p| p.space).collect();
    spaces.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    spaces.dedup();
    let algorithms: Vec<Algorithm> = {
        let mut seen = Vec::new();
        for p in points {
            if !seen.contains(&p.algorithm) {
                seen.push(p.algorithm);
            }
        }
        seen
    };
    print!("{:>8}", "space%");
    for algo in &algorithms {
        print!("{:>9}", algo.name());
    }
    println!();
    for &space in &spaces {
        print!("{:>7.2}%", space * 100.0);
        for &algo in &algorithms {
            match points.iter().find(|p| p.space == space && p.algorithm == algo) {
                Some(p) => print!("{:>9.2}", p.log10_error),
                None => print!("{:>9}", "-"),
            }
        }
        println!();
    }
    for p in points {
        println!(
            "csv,{title},{space},{algo},{log10:.4},{raw:.6}",
            space = p.space,
            algo = p.algorithm.name(),
            log10 = p.log10_error,
            raw = p.error
        );
    }
    println!();
}

/// The paper's qualitative expectation, echoed under each figure so the
/// output is self-describing.
pub fn print_expectation(text: &str) {
    println!("paper expectation: {text}");
    println!();
}
