//! Lock-discipline analysis for the strict-scope crates.
//!
//! `crates/serve` (and since PR 8 `crates/flat` and `crates/util` too —
//! see `LOCK_SCOPES` in `main.rs`) keeps shared state behind
//! `Mutex`/`RwLock`; the two
//! failure modes no node-local lint can see are (a) a guard held across
//! a blocking call — a slow peer then stalls every thread that wants the
//! lock — and (b) two locks acquired in opposite orders on different
//! paths, the classic inversion deadlock. Both are *path* properties of
//! guard lifetimes, so the pass simulates guard scopes over the token
//! stream:
//!
//! - **Lock identities** are struct fields with `Mutex`/`RwLock` types
//!   (from the item model) plus `let x = Mutex::new(…)` locals.
//! - **Acquisitions** are `.lock()`/`.read()`/`.write()` on a receiver
//!   that names a lock, or calls to workspace fns returning a `*Guard`
//!   type (`lock_queue`, `read_entries`, …), resolved to the field they
//!   lock.
//! - **Releases**: end of the enclosing block, `drop(guard)`, end of
//!   statement for un-bound temporaries, and passing the guard *by
//!   value* to a call (`Condvar::wait(guard)` releases the mutex — the
//!   sanctioned blocking-while-locked pattern).
//! - **Blocking events** are I/O-ish method calls (`read`, `write`,
//!   `accept`, `join`, `recv`, `wait*`, `connect`, `flush`, …), known
//!   blocking path calls (`fs::read`, `thread::sleep`, …), and calls to
//!   workspace functions that transitively block (fixpoint over the
//!   call graph) — blocking, like panicking, is a path property.
//!
//! Known under-approximation: a guard re-bound from a `Condvar` wait's
//! return value is no longer tracked. Over-approximation: method names
//! are matched without receiver types, so `Vec::join`-alikes can flag;
//! the baseline absorbs deliberate cases.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::callgraph::Graph;
use crate::analysis::items::FileModel;
use crate::analysis::tokens::{Token, TokenKind};
use crate::reach::FlowFinding;
use crate::rules::Violation;

/// Method names treated as blocking regardless of receiver.
const BLOCKING_METHODS: &[&str] = &[
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write",
    "write_all",
    "write_to",
    "flush",
    "accept",
    "join",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
    "connect",
    "sleep",
];

/// Path-call suffixes treated as blocking.
const BLOCKING_PATHS: &[&str] = &[
    "fs::read",
    "fs::write",
    "fs::read_to_string",
    "fs::copy",
    "fs::remove_file",
    "thread::sleep",
    "TcpStream::connect",
    "File::open",
    "File::create",
];

/// Acquisition method names on a lock-typed receiver.
pub(crate) const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Chained methods that still yield the guard: `let g =
/// queue.lock().unwrap_or_else(PoisonError::into_inner);` binds the
/// guard to `g`, while any other chain (`.lock().len()`) consumes it
/// into a temporary that dies at the statement end.
pub(crate) const GUARD_CHAIN: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

#[derive(Debug)]
struct LiveGuard {
    /// The bound variable, `None` for statement temporaries.
    var: Option<String>,
    /// Lock identity (field or local name).
    lock: String,
    /// Brace depth (relative to the body) at acquisition.
    depth: usize,
}

/// An observed nested acquisition: `first` was held when `second` was
/// taken.
#[derive(Debug)]
struct OrderEdge {
    first: String,
    second: String,
    file: String,
    line: usize,
    in_fn: String,
}

/// Runs the pass over every in-scope file. `scopes` is a list of path
/// prefixes (production: `LOCK_SCOPES` in `main.rs`); `graph` supplies
/// call edges for the transitive-blocking fixpoint.
pub(crate) fn analyze(models: &[FileModel], graph: &Graph, scopes: &[&str]) -> Vec<FlowFinding> {
    let in_scope = |m: &&FileModel| scopes.iter().any(|s| m.file.starts_with(s));
    // Lock field names across the whole workspace: the blocking
    // classifier needs them everywhere to tell `entries.read()` (RwLock
    // acquisition) from `stream.read()` (blocking I/O).
    let mut lock_names: BTreeSet<String> = BTreeSet::new();
    for model in models {
        lock_names.extend(model.lock_fields.iter().cloned());
    }

    // Guard-returning fns → the lock identity they acquire.
    let mut guard_fns: BTreeMap<String, String> = BTreeMap::new();
    for model in models.iter().filter(in_scope) {
        for f in &model.fns {
            if !f.ret.contains("Guard") {
                continue;
            }
            let identity = f
                .body
                .and_then(|body| first_lock_receiver(&model.tokens, body, &lock_names))
                .unwrap_or_else(|| f.name.clone());
            guard_fns.insert(f.name.clone(), identity);
        }
    }

    // Transitive blocking classification over the whole graph. Only
    // *path* calls consult it: method names are too overloaded to
    // resolve without types (`.load()` is both `SummaryRegistry::load`,
    // which hits the filesystem, and `AtomicBool::load`, which doesn't),
    // so a method call only counts as blocking via the direct list.
    let blocking = blocking_fixpoint(models, graph, &lock_names);
    let mut blocking_index = BlockingIndex::default();
    for (idx, f) in graph.fns.iter().enumerate() {
        if blocking[idx] {
            if !f.item.has_self {
                blocking_index.bare.insert(f.item.name.clone());
            }
            blocking_index.quals.push(f.item.qual.clone());
        }
    }

    let mut findings = Vec::new();
    let mut edges: Vec<OrderEdge> = Vec::new();
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for model in models.iter().filter(in_scope) {
        for f in model.fns.iter().filter(|f| !f.in_test) {
            let Some(body) = f.body else { continue };
            walk_fn(
                model,
                f_qual(f),
                body,
                &lock_names,
                &guard_fns,
                &blocking_index,
                &mut findings,
                &mut edges,
                &mut seen,
            );
        }
    }

    // Lock-order inversions: (A→B) somewhere and (B→A) elsewhere.
    let pairs: BTreeSet<(String, String)> =
        edges.iter().map(|e| (e.first.clone(), e.second.clone())).collect();
    for edge in &edges {
        if edge.first != edge.second && pairs.contains(&(edge.second.clone(), edge.first.clone())) {
            let key = (edge.file.clone(), edge.line, format!("{}->{}", edge.first, edge.second));
            if seen.insert(key) {
                findings.push(FlowFinding {
                    violation: Violation {
                        rule: "lock-order-inversion",
                        file: edge.file.clone(),
                        line: edge.line,
                        content: format!(
                            "acquires '{}' then '{}' in {}; the opposite order exists elsewhere",
                            edge.first, edge.second, edge.in_fn
                        ),
                    },
                    witness: vec![format!(
                        "{} ({}:{}) holds '{}' while taking '{}'",
                        edge.in_fn, edge.file, edge.line, edge.first, edge.second
                    )],
                });
            }
        }
    }
    findings.sort_by(|a, b| {
        (&a.violation.file, a.violation.line).cmp(&(&b.violation.file, b.violation.line))
    });
    findings
}

fn f_qual(f: &crate::analysis::items::FnItem) -> String {
    f.qual.clone()
}

/// Workspace fns classified as (transitively) blocking, indexed the way
/// call sites resolve: bare names for free/associated fns, qualified
/// paths for `a::b(` calls.
#[derive(Debug, Default)]
struct BlockingIndex {
    bare: BTreeSet<String>,
    quals: Vec<String>,
}

impl BlockingIndex {
    fn matches(&self, path: &[String]) -> bool {
        if path.len() == 1 {
            self.bare.contains(&path[0])
        } else {
            // At least the final two segments must line up — the same
            // rule the call graph uses for qualified paths.
            self.quals
                .iter()
                .any(|q| (2..=path.len()).any(|k| qual_suffix_matches(q, &path[path.len() - k..])))
        }
    }
}

/// Marks every fn that directly blocks, then propagates through the
/// call graph: a caller of a blocking fn blocks.
fn blocking_fixpoint(
    models: &[FileModel],
    graph: &Graph,
    lock_names: &BTreeSet<String>,
) -> Vec<bool> {
    let mut blocking = vec![false; graph.fns.len()];
    for (idx, f) in graph.fns.iter().enumerate() {
        if let Some(body) = f.item.body {
            blocking[idx] = has_direct_blocking(&models[f.model].tokens, body, lock_names);
        }
    }
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); graph.fns.len()];
    for (caller, edges) in graph.edges.iter().enumerate() {
        for edge in edges {
            reverse[edge.callee].push(caller);
        }
    }
    let mut queue: Vec<usize> = (0..graph.fns.len()).filter(|&i| blocking[i]).collect();
    while let Some(v) = queue.pop() {
        for &caller in &reverse[v] {
            if !blocking[caller] {
                blocking[caller] = true;
                queue.push(caller);
            }
        }
    }
    blocking
}

fn has_direct_blocking(
    tokens: &[Token],
    range: (usize, usize),
    lock_names: &BTreeSet<String>,
) -> bool {
    let (start, end) = range;
    let end = end.min(tokens.len());
    let mut i = start;
    while i < end {
        if tokens[i].is_punct(".") {
            if let (Some(name), true) = (tokens.get(i + 1), at_punct(tokens, i + 2, "(")) {
                if name.kind == TokenKind::Ident
                    && BLOCKING_METHODS.contains(&name.text.as_str())
                    // `entries.read()` acquires an RwLock; only a
                    // non-lock receiver makes `.read()` blocking I/O.
                    && !(ACQUIRE_METHODS.contains(&name.text.as_str())
                        && receiver_lock(tokens, start, i, lock_names).is_some())
                {
                    return true;
                }
            }
        } else if tokens[i].kind == TokenKind::Ident {
            if let Some((path, _)) = path_call_at(tokens, i, end) {
                if is_blocking_path(&path) {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

fn is_blocking_path(path: &[String]) -> bool {
    let joined = path.join("::");
    BLOCKING_PATHS.iter().any(|b| joined == *b || joined.ends_with(&format!("::{b}")))
}

/// The first `.lock()`/`.read()`/`.write()` receiver naming a lock in
/// the range — how a guard-returning helper reveals which lock it takes.
pub(crate) fn first_lock_receiver(
    tokens: &[Token],
    range: (usize, usize),
    lock_names: &BTreeSet<String>,
) -> Option<String> {
    let (start, end) = range;
    let end = end.min(tokens.len());
    for i in start..end {
        if tokens[i].is_punct(".")
            && tokens.get(i + 1).is_some_and(|t| {
                t.kind == TokenKind::Ident && ACQUIRE_METHODS.contains(&t.text.as_str())
            })
            && at_punct(tokens, i + 2, "(")
        {
            if let Some(lock) = receiver_lock(tokens, start, i, lock_names) {
                return Some(lock);
            }
        }
    }
    None
}

/// Walks backward through a `a.b.c` receiver chain ending at the `.` at
/// `dot`; returns the first component naming a known lock.
pub(crate) fn receiver_lock(
    tokens: &[Token],
    start: usize,
    dot: usize,
    lock_names: &BTreeSet<String>,
) -> Option<String> {
    let mut j = dot;
    while j > start {
        j -= 1;
        match tokens[j].kind {
            TokenKind::Ident => {
                if lock_names.contains(&tokens[j].text) {
                    return Some(tokens[j].text.clone());
                }
            }
            TokenKind::Punct if tokens[j].text == "." => {}
            _ => return None,
        }
    }
    None
}

/// Extracts a `a::b::c(`-style path call starting at the ident at `i`;
/// returns the segments and the index of the `(`.
pub(crate) fn path_call_at(tokens: &[Token], i: usize, end: usize) -> Option<(Vec<String>, usize)> {
    // Not a call start when preceded by `.` (method), `fn` (declaration)
    // or `::` (mid-path: the `new` of `Arc::new` must not re-parse as a
    // bare call named `new`).
    if i > 0
        && (tokens[i - 1].is_punct(".")
            || tokens[i - 1].is_ident("fn")
            || tokens[i - 1].is_punct("::"))
    {
        return None;
    }
    let mut path = vec![tokens[i].text.clone()];
    let mut j = i + 1;
    while j + 1 < end && tokens[j].is_punct("::") && tokens[j + 1].kind == TokenKind::Ident {
        path.push(tokens[j + 1].text.clone());
        j += 2;
    }
    if j < end && tokens[j].is_punct("(") {
        Some((path, j))
    } else {
        None
    }
}

/// Matching close paren for the `(` at `open` (token index).
pub(crate) fn matching_paren(tokens: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().take(end).skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    end.saturating_sub(1)
}

pub(crate) fn at_punct(tokens: &[Token], i: usize, punct: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(punct))
}

#[allow(clippy::too_many_arguments)] // internal walker; a context struct would just rename these
fn walk_fn(
    model: &FileModel,
    qual: String,
    body: (usize, usize),
    field_locks: &BTreeSet<String>,
    guard_fns: &BTreeMap<String, String>,
    blocking_index: &BlockingIndex,
    findings: &mut Vec<FlowFinding>,
    edges: &mut Vec<OrderEdge>,
    seen: &mut BTreeSet<(String, usize, String)>,
) {
    let tokens = &model.tokens;
    let (start, end) = body;
    let end = end.min(tokens.len());
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut local_locks: BTreeSet<String> = BTreeSet::new();
    let mut depth = 0usize;
    let mut current_let: Option<String> = None;
    let mut i = start;

    let all_locks = |local: &BTreeSet<String>| -> BTreeSet<String> {
        field_locks.union(local).cloned().collect()
    };

    while i < end {
        let t = &tokens[i];
        match (&t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") => {
                depth += 1;
                i += 1;
            }
            (TokenKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                live.retain(|g| g.depth <= depth);
                current_let = None;
                i += 1;
            }
            (TokenKind::Punct, ";") => {
                live.retain(|g| g.var.is_some());
                current_let = None;
                i += 1;
            }
            (TokenKind::Ident, "let") => {
                // `let [mut] name =`: remember the binding target.
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct("="))
                {
                    current_let = Some(tokens[j].text.clone());
                    i = j + 2;
                } else {
                    i += 1;
                }
            }
            (TokenKind::Ident, "Mutex" | "RwLock")
                if tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                    && tokens.get(i + 2).is_some_and(|t| t.is_ident("new")) =>
            {
                if let Some(var) = current_let.clone() {
                    local_locks.insert(var);
                }
                i += 3;
            }
            (TokenKind::Ident, "drop")
                if at_punct(tokens, i + 1, "(")
                    && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                    && at_punct(tokens, i + 3, ")") =>
            {
                let var = &tokens[i + 2].text;
                live.retain(|g| g.var.as_deref() != Some(var.as_str()));
                i += 4;
            }
            (TokenKind::Punct, ".") => {
                let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
                    i += 1;
                    continue;
                };
                if !at_punct(tokens, i + 2, "(") {
                    i += 2;
                    continue;
                }
                let locks = all_locks(&local_locks);
                let acquired = if ACQUIRE_METHODS.contains(&name.text.as_str()) {
                    receiver_lock(tokens, start, i, &locks)
                } else {
                    None
                };
                let acquired = acquired.or_else(|| guard_fns.get(&name.text).cloned());
                if let Some(lock) = acquired {
                    record_acquisition(&lock, &live, &mut *edges, model, &qual, name.line);
                    let close = matching_paren(tokens, i + 2, end);
                    let var = if binds_to_let(tokens, close + 1, end) {
                        current_let.clone()
                    } else {
                        None
                    };
                    live.push(LiveGuard { var, lock, depth });
                    i += 3;
                    continue;
                }
                if BLOCKING_METHODS.contains(&name.text.as_str()) {
                    let close = matching_paren(tokens, i + 2, end);
                    release_moved_guards(tokens, i + 2, close, &mut live);
                    report_blocked(
                        &live,
                        &format!(".{}()", name.text),
                        model,
                        &qual,
                        name.line,
                        findings,
                        seen,
                    );
                    i += 3;
                    continue;
                }
                i += 2;
            }
            (TokenKind::Ident, _) => {
                if let Some((path, open)) = path_call_at(tokens, i, end) {
                    let bare = path.len() == 1;
                    if bare && guard_fns.contains_key(&path[0]) {
                        let lock = guard_fns[&path[0]].clone();
                        record_acquisition(&lock, &live, &mut *edges, model, &qual, t.line);
                        let close = matching_paren(tokens, open, end);
                        let var = if binds_to_let(tokens, close + 1, end) {
                            current_let.clone()
                        } else {
                            None
                        };
                        live.push(LiveGuard { var, lock, depth });
                        i = open + 1;
                        continue;
                    }
                    if is_blocking_path(&path) || blocking_index.matches(&path) {
                        let close = matching_paren(tokens, open, end);
                        release_moved_guards(tokens, open, close, &mut live);
                        report_blocked(
                            &live,
                            &path.join("::"),
                            model,
                            &qual,
                            t.line,
                            findings,
                            seen,
                        );
                        i = open + 1;
                        continue;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Does the expression whose closing paren sits just before `j` flow
/// into the enclosing `let` binding? True when the rest of the
/// statement is only guard-preserving chained calls followed by `;`.
pub(crate) fn binds_to_let(tokens: &[Token], mut j: usize, end: usize) -> bool {
    loop {
        if at_punct(tokens, j, ";") {
            return true;
        }
        if at_punct(tokens, j, ".")
            && tokens.get(j + 1).is_some_and(|t| {
                t.kind == TokenKind::Ident && GUARD_CHAIN.contains(&t.text.as_str())
            })
            && at_punct(tokens, j + 2, "(")
        {
            j = matching_paren(tokens, j + 2, end) + 1;
            continue;
        }
        return false;
    }
}

/// Suffix match of a call path against a blocking fn's qualified name.
fn qual_suffix_matches(qual: &str, path: &[String]) -> bool {
    let segments: Vec<&str> = qual.split("::").collect();
    path.len() <= segments.len()
        && segments[segments.len() - path.len()..].iter().zip(path).all(|(a, b)| *a == b)
}

/// A guard passed *by value* as a bare call argument is released
/// (`Condvar::wait(guard)`); `&guard` borrows and is not.
fn release_moved_guards(tokens: &[Token], open: usize, close: usize, live: &mut Vec<LiveGuard>) {
    for i in open + 1..close {
        if tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let before_ok = tokens[i - 1].is_punct("(") || tokens[i - 1].is_punct(",");
        let after_ok = at_punct(tokens, i + 1, ",") || at_punct(tokens, i + 1, ")");
        if before_ok && after_ok {
            let var = &tokens[i].text;
            live.retain(|g| g.var.as_deref() != Some(var.as_str()));
        }
    }
}

fn record_acquisition(
    lock: &str,
    live: &[LiveGuard],
    edges: &mut Vec<OrderEdge>,
    model: &FileModel,
    qual: &str,
    line: usize,
) {
    for guard in live {
        if guard.lock != lock {
            edges.push(OrderEdge {
                first: guard.lock.clone(),
                second: lock.to_owned(),
                file: model.file.clone(),
                line,
                in_fn: qual.to_owned(),
            });
        }
    }
}

fn report_blocked(
    live: &[LiveGuard],
    call: &str,
    model: &FileModel,
    qual: &str,
    line: usize,
    findings: &mut Vec<FlowFinding>,
    seen: &mut BTreeSet<(String, usize, String)>,
) {
    for guard in live {
        let content =
            format!("guard of '{}' held across blocking `{}` in {}", guard.lock, call, qual);
        let key = (model.file.clone(), line, content.clone());
        if seen.insert(key) {
            findings.push(FlowFinding {
                violation: Violation {
                    rule: "lock-across-blocking",
                    file: model.file.clone(),
                    line,
                    content,
                },
                witness: vec![format!(
                    "{} ({}:{}) holds '{}' while calling `{}`",
                    qual, model.file, line, guard.lock, call
                )],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::callgraph::build;
    use crate::analysis::items::parse_file;
    use crate::analysis::scan::{mask_source, test_line_mask};
    use crate::analysis::tokens::tokenize;

    fn run(files: &[(&str, &str)]) -> Vec<FlowFinding> {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(file, src)| {
                let masked = mask_source(src);
                let test_lines = test_line_mask(&masked);
                parse_file(file, tokenize(&masked), &test_lines, false)
            })
            .collect();
        let graph = build(&models);
        analyze(&models, &graph, &["crates/serve/src/", "crates/util/src/"])
    }

    const POOLISH: &str = "
struct Shared { queue: Mutex<VecDeque<u32>>, registry: RwLock<Vec<u32>> }
";

    #[test]
    fn guard_held_across_blocking_read_is_flagged() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            &format!(
                "{POOLISH}
impl Shared {{
    fn bad(&self, stream: &mut TcpStream) {{
        let q = self.queue.lock();
        stream.read(&mut buf);
        q.len();
    }}
}}
"
            ),
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].violation.rule, "lock-across-blocking");
        assert!(findings[0].violation.content.contains("'queue'"));
        assert!(findings[0].violation.content.contains(".read()"));
    }

    #[test]
    fn guard_dropped_before_blocking_is_clean() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            &format!(
                "{POOLISH}
impl Shared {{
    fn good(&self, stream: &mut TcpStream) {{
        let q = self.queue.lock();
        q.len();
        drop(q);
        stream.read(&mut buf);
    }}
    fn scoped(&self, stream: &mut TcpStream) {{
        {{ let q = self.queue.lock(); q.len(); }}
        stream.read(&mut buf);
    }}
}}
"
            ),
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            &format!(
                "{POOLISH}
impl Shared {{
    fn peek(&self, stream: &mut TcpStream) {{
        let n = self.queue.lock().len();
        stream.read(&mut buf);
    }}
}}
"
            ),
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn condvar_wait_consumes_the_guard() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            &format!(
                "{POOLISH}
impl Shared {{
    fn worker(&self, cv: &Condvar) {{
        let mut queue = self.queue.lock();
        let (guard, _) = cv.wait_timeout(queue, timeout);
    }}
}}
"
            ),
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn guard_returning_helpers_resolve_their_lock() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            &format!(
                "{POOLISH}
impl Shared {{
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<u32>> {{ self.queue.lock() }}
    fn bad(&self, stream: &mut TcpStream) {{
        let q = self.lock_queue();
        stream.write(&buf);
    }}
}}
"
            ),
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].violation.content.contains("'queue'"), "{findings:?}");
    }

    #[test]
    fn transitive_blocking_through_a_workspace_fn_is_flagged() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            &format!(
                "{POOLISH}
fn load_from_disk(path: &Path) -> Vec<u8> {{ std::fs::read(path) }}
impl Shared {{
    fn bad(&self) {{
        let q = self.queue.lock();
        let bytes = load_from_disk(path);
    }}
}}
"
            ),
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].violation.content.contains("load_from_disk"), "{findings:?}");
    }

    #[test]
    fn lock_order_inversion_is_detected() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            &format!(
                "{POOLISH}
impl Shared {{
    fn ab(&self) {{
        let q = self.queue.lock();
        let r = self.registry.read();
    }}
    fn ba(&self) {{
        let r = self.registry.write();
        let q = self.queue.lock();
    }}
}}
"
            ),
        )]);
        let inversions: Vec<_> =
            findings.iter().filter(|f| f.violation.rule == "lock-order-inversion").collect();
        assert_eq!(inversions.len(), 2, "{findings:?}");
        assert!(inversions[0].violation.content.contains("'queue'"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            &format!(
                "{POOLISH}
impl Shared {{
    fn ab(&self) {{
        let q = self.queue.lock();
        let r = self.registry.read();
    }}
    fn ab2(&self) {{
        let q = self.queue.lock();
        let r = self.registry.write();
    }}
}}
"
            ),
        )]);
        assert!(
            findings.iter().all(|f| f.violation.rule != "lock-order-inversion"),
            "{findings:?}"
        );
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let findings = run(&[(
            "crates/core/src/a.rs",
            &format!(
                "{POOLISH}
impl Shared {{
    fn bad(&self, stream: &mut TcpStream) {{
        let q = self.queue.lock();
        stream.read(&mut buf);
    }}
}}
"
            ),
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn guard_bound_inside_a_closure_stays_scoped_to_it() {
        // The walker treats a braced closure body like any other block:
        // a guard captured/bound inside it is live across blocking calls
        // *inside* the closure, and dies at the closure's `}` — the
        // blocking call after the closure must not flag.
        let findings = run(&[(
            "crates/serve/src/a.rs",
            &format!(
                "{POOLISH}
impl Shared {{
    fn with_cb(&self, stream: &mut TcpStream) {{
        let cb = move |n: u32| {{
            let q = self.queue.lock();
            stream.write(&buf);
        }};
        stream.read(&mut buf);
    }}
}}
"
            ),
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].violation.content.contains(".write()"), "{findings:?}");
    }

    #[test]
    fn local_mutexes_count_as_locks() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "fn bad(stream: &mut TcpStream) {
                let gate = Mutex::new(());
                let g = gate.lock();
                stream.read(&mut buf);
            }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].violation.content.contains("'gate'"));
    }
}
