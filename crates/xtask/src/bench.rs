//! `cargo xtask bench` — the checked-in benchmark harness (DESIGN.md
//! §10). Dependency-free by design: seeded corpora via `twig-datagen`,
//! wall-clock timing via `std::time::Instant`, warmup plus trimmed-mean
//! sampling instead of criterion.
//!
//! Measured sections:
//!
//! - `build_secs` — full CST construction over the seeded corpus,
//! - `csr_lookup_us` / `hashmap_lookup_us` — cold path lookups (the
//!   cache is evicted before every timed sweep) through the trie's CSR
//!   transition layout vs. a global `(parent, edge)` hashmap rebuilt
//!   from the same trie (the pre-CSR layout),
//! - `estimate_<algo>_us` — plan-free estimate latency per algorithm,
//! - `plan_off_us` / `plan_on_us` — repeated-twig estimates without and
//!   with a warmed [`QueryPlan`] (the serve plan-cache hit path),
//! - `serve_requests_per_sec` / `serve_p95_us` — pipelined closed-loop
//!   loadgen throughput against an in-process server (one connection
//!   per core capped at 4, 8 requests in flight each).
//!
//! `--quick` shrinks the corpus and windows for CI smoke runs; `--out`
//! writes the JSON report; `--check FILE` compares against a previous
//! report and fails on a >2x regression of any shared metric. Full
//! (non-quick) checks additionally hold `serve_requests_per_sec` to a
//! core-scaled absolute floor ([`SERVE_RPS_FLOOR_PER_CORE`]) and
//! `serve_p95_us` to an absolute ceiling ([`SERVE_P95_CEILING_US`]).

use std::hint::black_box;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use twig_core::{Algorithm, CountKind, Cst, CstConfig, QueryPlan, SpaceBudget};
use twig_datagen::{generate_dblp, positive_queries, DblpConfig, WorkloadConfig};
use twig_pst::{EdgeKey, PathToken, PrunedTrie, TrieNodeId};
use twig_serve::loadgen::{self, LoadgenConfig};
use twig_serve::{Json, Server, ServerConfig, SummaryRegistry, SummarySpec};
use twig_tree::DataTree;
use twig_util::cast::{count_to_f64, size_to_u64};
use twig_util::{FxHashMap, SplitMix64};

const SEED: u64 = 0xbe9c_0004;

/// Per-core serve-throughput floor (requests per second) enforced by
/// `--check` on full-size runs, scaled by `min(available cores, 8)`.
/// The reactor rewrite (DESIGN.md §15) took the pipelined closed loop
/// from ~17.4k req/s on the blocking thread-per-connection path to
/// ~46k req/s *per core* (measured single-core: client and server
/// share it); at the 8-core design point the floor demands the full
/// 5x-over-PR7 target of 86,936 req/s. Scaling by cores (capped at
/// the 8 reactors the default config boots) is what makes the gate
/// honest on both ends: a 1-core CI box cannot parallelize reactors
/// and is estimator-bound near 64k req/s no matter how good the
/// transport is, while an 8-core box that only reaches 1-core numbers
/// has lost the per-core scaling the architecture exists for. Pinning
/// an absolute per-core number (instead of only the relative 2x
/// check) means a regression back to blocking-I/O throughput fails
/// even if the checked-in baseline report were ever regenerated on
/// the slow path. Quick runs skip the floor — their sub-second window
/// is warmup-dominated — and rely on the relative comparison against
/// the checked-in baseline.
const SERVE_RPS_FLOOR_PER_CORE: f64 = 10_867.0;

/// Absolute cap on `serve_p95_us` for full-size `--check` runs: the
/// PR 7 thread pool measured 415 µs p95 with 4 in-flight requests,
/// so the reactor must hold that line while carrying 8x the in-flight
/// load (the pipelined loadgen keeps `8 × connections` outstanding).
const SERVE_P95_CEILING_US: f64 = 415.0;

/// Cores the benchmark can actually use, for scaling the serve floor
/// and sizing the loadgen (one connection per core, capped at 4 so
/// big machines still measure the checked-in 4-connection shape).
fn bench_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

struct BenchConfig {
    quick: bool,
    corpus_bytes: usize,
    workload: usize,
    lookup_paths: usize,
    warmup: usize,
    samples: usize,
    serve_window: Duration,
}

impl BenchConfig {
    fn new(quick: bool) -> BenchConfig {
        if quick {
            BenchConfig {
                quick,
                corpus_bytes: 60_000,
                workload: 15,
                lookup_paths: 400,
                warmup: 1,
                samples: 5,
                serve_window: Duration::from_millis(800),
            }
        } else {
            BenchConfig {
                quick,
                // Large enough that the summary trie dwarfs the cache:
                // the lookup benches measure miss-bound probes, not L2.
                corpus_bytes: 4_000_000,
                workload: 60,
                lookup_paths: 5000,
                warmup: 2,
                samples: 9,
                serve_window: Duration::from_millis(2500),
            }
        }
    }
}

pub(crate) fn bench(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) => out = Some(path.clone()),
                None => return usage_error("--out needs a file argument"),
            },
            "--check" => match iter.next() {
                Some(path) => check = Some(path.clone()),
                None => return usage_error("--check needs a file argument"),
            },
            other => return usage_error(&format!("unknown bench flag '{other}'")),
        }
    }

    let config = BenchConfig::new(quick);
    let metrics = match run_benchmarks(&config) {
        Ok(metrics) => metrics,
        Err(message) => {
            eprintln!("bench failed: {message}");
            return ExitCode::FAILURE;
        }
    };

    for (name, value) in &metrics {
        println!("{name:<28} {value:>14.3}");
    }
    let report = render_json(&config, &metrics);
    if let Some(path) = out {
        if let Err(err) = std::fs::write(&path, &report) {
            eprintln!("cannot write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    } else {
        println!("{report}");
    }

    match check {
        Some(path) => check_regressions(&path, &metrics, quick),
        None => ExitCode::SUCCESS,
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\nusage: cargo xtask bench [--quick] [--out FILE] [--check FILE]");
    ExitCode::FAILURE
}

/// Streams writes through a buffer much larger than the last-level
/// cache, evicting the benchmarked structures so the next timed sweep
/// runs against cold lines. Used by the lookup benches, whose metric
/// is explicitly the *cold* (cache-miss-bound) probe cost — a warm
/// sweep over a summary-sized working set measures L2 latency, not
/// the layout.
struct CacheEvictor {
    buffer: Vec<u64>,
}

impl CacheEvictor {
    fn new() -> Self {
        Self { buffer: vec![1u64; 32 * 1024 * 1024 / 8] }
    }

    fn evict(&mut self) {
        for slot in &mut self.buffer {
            *slot = slot.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        black_box(&mut self.buffer);
    }
}

/// Mean with the fastest and slowest fifth trimmed off.
fn trimmed_mean(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    let trim = times.len() / 5;
    let kept = &times[trim..times.len() - trim];
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Warmup runs, then `samples` timed runs; returns the trimmed mean.
fn trimmed_mean_secs<R>(warmup: usize, samples: usize, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..warmup {
        black_box(f());
    }
    trimmed_mean(
        (0..samples.max(1))
            .map(|_| {
                let started = Instant::now();
                black_box(f());
                started.elapsed().as_secs_f64()
            })
            .collect(),
    )
}

fn run_benchmarks(config: &BenchConfig) -> Result<Vec<(String, f64)>, String> {
    let mut metrics: Vec<(String, f64)> = Vec::new();
    eprintln!("generating ~{} KiB corpus (seed {SEED:#x})...", config.corpus_bytes / 1024);
    let xml = generate_dblp(&DblpConfig {
        target_bytes: config.corpus_bytes,
        seed: SEED,
        ..DblpConfig::default()
    });
    let tree = DataTree::from_xml(&xml).map_err(|e| format!("corpus XML invalid: {e}"))?;
    let cst_config = CstConfig { budget: SpaceBudget::Threshold(2), ..CstConfig::default() };

    eprintln!("benchmarking summary build...");
    let build_secs =
        trimmed_mean_secs(config.warmup, config.samples.min(5), || Cst::build(&tree, &cst_config));
    metrics.push(("build_secs".into(), build_secs));

    let cst = Cst::build(&tree, &cst_config).map_err(|e| format!("CST build failed: {e}"))?;
    metrics.push(("summary_nodes".into(), approx(cst.node_count())));

    eprintln!("benchmarking trie lookups ({} paths)...", config.lookup_paths);
    bench_lookups(&cst, config, &mut metrics);

    let twigs = positive_queries(
        &tree,
        &WorkloadConfig { count: config.workload, seed: SEED ^ 1, ..WorkloadConfig::default() },
    );
    if twigs.is_empty() {
        return Err("workload generation produced no queries".into());
    }

    eprintln!("benchmarking estimators ({} twigs)...", twigs.len());
    for algorithm in Algorithm::ALL {
        let secs = trimmed_mean_secs(config.warmup, config.samples, || {
            let mut acc = 0.0;
            for twig in &twigs {
                acc += cst.estimate(twig, algorithm, CountKind::Occurrence);
            }
            acc
        });
        metrics.push((format!("estimate_{algorithm}_us"), per(secs, twigs.len())));
    }

    eprintln!("benchmarking plan-cache hit path...");
    let plan_off = trimmed_mean_secs(config.warmup, config.samples, || {
        let mut acc = 0.0;
        for twig in &twigs {
            acc += cst.estimate_raw(twig, Algorithm::Msh, CountKind::Occurrence, None);
        }
        acc
    });
    let plans: Vec<QueryPlan> = twigs.iter().map(|_| QueryPlan::new()).collect();
    for (twig, plan) in twigs.iter().zip(&plans) {
        // Warm every stage once: timed runs below are pure cache hits.
        cst.estimate_raw(twig, Algorithm::Msh, CountKind::Occurrence, Some(plan));
    }
    let plan_on = trimmed_mean_secs(config.warmup, config.samples, || {
        let mut acc = 0.0;
        for (twig, plan) in twigs.iter().zip(&plans) {
            acc += cst.estimate_raw(twig, Algorithm::Msh, CountKind::Occurrence, Some(plan));
        }
        acc
    });
    metrics.push(("plan_off_us".into(), per(plan_off, twigs.len())));
    metrics.push(("plan_on_us".into(), per(plan_on, twigs.len())));
    metrics.push(("plan_speedup".into(), plan_off / plan_on));

    eprintln!("benchmarking served throughput ({:?} window)...", config.serve_window);
    let (requests_per_sec, p95_us) = bench_serve(&cst, config)?;
    metrics.push(("serve_requests_per_sec".into(), requests_per_sec));
    metrics.push(("serve_p95_us".into(), approx_u64(p95_us)));

    let many = if config.quick { 16 } else { 100 };
    eprintln!("benchmarking many-summary hosting ({many} summaries, owned vs flat)...");
    bench_many_summaries(&cst, many, &mut metrics)?;

    Ok(metrics)
}

/// The many-summary hosting axis: `count` copies of the summary on
/// disk as owned (`TWIGCST`) files vs flat (`TWIGFLT1`) containers,
/// measuring the total time to bring every one of them to a servable
/// state and the resident-set growth while all are held open. The
/// owned path deserializes each file into heap structures; the flat
/// path mmaps and validates a fixed-size envelope, so its cost is
/// O(1) per summary and its residency is demand-paged.
fn bench_many_summaries(
    cst: &Cst,
    count: usize,
    metrics: &mut Vec<(String, f64)>,
) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("twig-bench-many-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut owned_bytes = Vec::new();
    cst.write_to(&mut owned_bytes).map_err(|e| format!("cannot serialize summary: {e}"))?;
    let flat_bytes =
        twig_flat::writer::pack(cst).map_err(|e| format!("cannot pack summary: {e}"))?;
    let mut owned_paths = Vec::with_capacity(count);
    let mut flat_paths = Vec::with_capacity(count);
    for index in 0..count {
        let owned_path = dir.join(format!("many-{index}.cst"));
        let flat_path = dir.join(format!("many-{index}.flt"));
        std::fs::write(&owned_path, &owned_bytes).map_err(|e| format!("cannot write: {e}"))?;
        std::fs::write(&flat_path, &flat_bytes).map_err(|e| format!("cannot write: {e}"))?;
        owned_paths.push(owned_path);
        flat_paths.push(flat_path);
    }

    let load_all = |paths: &[std::path::PathBuf]| -> Result<(f64, f64, usize), String> {
        let rss_before = resident_kb();
        let started = Instant::now();
        let mut summaries = Vec::with_capacity(paths.len());
        for path in paths {
            summaries.push(
                twig_flat::AnySummary::load_file(path)
                    .map_err(|e| format!("cannot load {}: {e}", path.display()))?,
            );
        }
        let secs = started.elapsed().as_secs_f64();
        // Keep every summary alive while sampling residency, and touch
        // each so the loads cannot be optimized away.
        let nodes: usize = summaries.iter().map(twig_flat::AnySummary::node_count).sum();
        let rss_kb = resident_kb().saturating_sub(rss_before);
        black_box(&summaries);
        Ok((secs, rss_kb as f64, nodes))
    };

    let (owned_secs, owned_rss_kb, owned_nodes) = load_all(&owned_paths)?;
    let (flat_secs, flat_rss_kb, flat_nodes) = load_all(&flat_paths)?;
    if owned_nodes != flat_nodes {
        return Err(format!(
            "many-summary node counts diverged: owned {owned_nodes}, flat {flat_nodes}"
        ));
    }
    std::fs::remove_dir_all(&dir).ok();

    metrics.push(("many_owned_load_ms".into(), owned_secs * 1e3));
    metrics.push(("many_flat_load_ms".into(), flat_secs * 1e3));
    metrics.push(("many_load_speedup".into(), owned_secs / flat_secs.max(1e-12)));
    metrics.push(("many_owned_rss_kb".into(), owned_rss_kb));
    metrics.push(("many_flat_rss_kb".into(), flat_rss_kb));
    Ok(())
}

/// Current resident set in KiB via `/proc/self/status` (0 where that
/// interface does not exist — the rss metrics then read as deltas of
/// zero and are excluded from regression checks anyway).
fn resident_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let digits: String = rest.chars().filter(char::is_ascii_digit).collect();
            return digits.parse().unwrap_or(0);
        }
    }
    0
}

/// Cold lookups through the CSR layout vs. the pre-CSR global
/// `(parent, edge) -> child` hashmap, over the same sampled paths.
fn bench_lookups(cst: &Cst, config: &BenchConfig, metrics: &mut Vec<(String, f64)>) {
    let trie = cst.trie();
    let nodes: Vec<TrieNodeId> = trie.node_ids().collect();
    let mut rng = SplitMix64::new(SEED ^ 2);
    let paths: Vec<Vec<PathToken>> = (0..config.lookup_paths)
        .map(|_| trie.tokens_of(nodes[rng.index(nodes.len())]))
        .filter(|tokens| !tokens.is_empty())
        .collect();

    let mut map: FxHashMap<(TrieNodeId, EdgeKey), TrieNodeId> = FxHashMap::default();
    for &node in &nodes {
        if let (Some(parent), Some(edge)) = (trie.parent(node), trie.edge(node)) {
            map.insert((parent, edge), node);
        }
    }
    let csr_sweep = || {
        let mut hits = 0usize;
        for tokens in &paths {
            hits += usize::from(trie.find(tokens).is_some());
        }
        hits
    };
    let map_sweep = || {
        let mut hits = 0usize;
        for tokens in &paths {
            hits += usize::from(hashmap_find(&map, tokens).is_some());
        }
        hits
    };
    // The two layouts are sampled interleaved, each sweep against an
    // evicted cache, so slow drift in machine load biases both sides
    // equally instead of whichever happened to be measured second.
    let mut evictor = CacheEvictor::new();
    let mut csr_times = Vec::with_capacity(config.samples);
    let mut map_times = Vec::with_capacity(config.samples);
    for _ in 0..config.warmup {
        evictor.evict();
        black_box(csr_sweep());
        evictor.evict();
        black_box(map_sweep());
    }
    for _ in 0..config.samples.max(1) {
        evictor.evict();
        let started = Instant::now();
        black_box(csr_sweep());
        csr_times.push(started.elapsed().as_secs_f64());
        evictor.evict();
        let started = Instant::now();
        black_box(map_sweep());
        map_times.push(started.elapsed().as_secs_f64());
    }
    let csr = trimmed_mean(csr_times);
    let hashmap = trimmed_mean(map_times);

    metrics.push(("csr_lookup_us".into(), per(csr, paths.len())));
    metrics.push(("hashmap_lookup_us".into(), per(hashmap, paths.len())));
    metrics.push(("csr_speedup".into(), hashmap / csr));
    let _ = trie as &PrunedTrie;
}

fn hashmap_find(
    map: &FxHashMap<(TrieNodeId, EdgeKey), TrieNodeId>,
    tokens: &[PathToken],
) -> Option<TrieNodeId> {
    let mut node = TrieNodeId::ROOT;
    for token in tokens {
        node = *map.get(&(node, token.edge()))?;
    }
    Some(node)
}

fn bench_serve(cst: &Cst, config: &BenchConfig) -> Result<(f64, u64), String> {
    let dir = std::env::temp_dir().join(format!("twig-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join("bench.cst");
    let mut bytes = Vec::new();
    cst.write_to(&mut bytes).map_err(|e| format!("cannot serialize summary: {e}"))?;
    std::fs::write(&path, &bytes).map_err(|e| format!("cannot write {}: {e}", path.display()))?;

    let registry = SummaryRegistry::new();
    registry
        .load(SummarySpec { name: "bench".into(), path })
        .map_err(|e| format!("cannot load bench summary: {e}"))?;
    let server = Server::bind("127.0.0.1:0", ServerConfig::default(), registry)
        .map_err(|e| format!("cannot bind bench server: {e}"))?;
    let addr = server.local_addr().to_string();
    let thread = std::thread::spawn(move || server.run());

    let result = loadgen::run(&LoadgenConfig {
        addr,
        summary: "bench".into(),
        // One loadgen connection per core (capped at the designed 4):
        // oversubscribing a small box measures queueing delay, not the
        // server, and drowns the p95 number in Little's-law backlog.
        connections: bench_cores().min(4),
        batch: 8,
        pipeline: 8,
        duration: config.serve_window,
        seed: SEED ^ 3,
        shutdown_after: true,
        ..LoadgenConfig::default()
    });
    let _ = thread.join();
    std::fs::remove_dir_all(&dir).ok();
    let report = result?;
    if report.requests == 0 || report.errors > 0 {
        return Err(format!("loadgen run unhealthy: {}", report.render()));
    }
    Ok((report.requests_per_sec, report.p95_us))
}

fn per(total_secs: f64, items: usize) -> f64 {
    total_secs * 1e6 / items.max(1) as f64
}

fn approx(value: usize) -> f64 {
    u32::try_from(value).map_or(f64::MAX, f64::from)
}

fn approx_u64(value: u64) -> f64 {
    u32::try_from(value).map_or(f64::MAX, f64::from)
}

fn render_json(config: &BenchConfig, metrics: &[(String, f64)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"twig-bench-v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", config.quick));
    out.push_str("  \"metrics\": {\n");
    for (index, (name, value)) in metrics.iter().enumerate() {
        let comma = if index + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {value:?}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Compares current metrics against a previous report: shared metrics
/// may not regress by more than 2x (times up, rates/speedups down).
/// On full runs `serve_requests_per_sec` is instead held to the
/// core-scaled absolute floor ([`SERVE_RPS_FLOOR_PER_CORE`]) and
/// `serve_p95_us` to [`SERVE_P95_CEILING_US`] — the pipelined loop is
/// CPU-bound and scales with cores, so the meaningful gate is the
/// floor, not a ratio against whatever machine produced the baseline.
fn check_regressions(path: &str, metrics: &[(String, f64)], quick: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read baseline {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = match Json::parse(&text) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("baseline {path} is not valid JSON: {err}");
            return ExitCode::FAILURE;
        }
    };
    let Some(old_metrics) = parsed.get("metrics") else {
        eprintln!("baseline {path} has no \"metrics\" object");
        return ExitCode::FAILURE;
    };
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (name, new_value) in metrics {
        let Some(old_value) = old_metrics.get(name).and_then(Json::as_f64) else {
            continue;
        };
        // Not a time: trie size is corpus-determined. The *_speedup
        // ratios are excluded because they do not survive a scale
        // change (a --quick run's cache-resident trie makes the cold
        // CSR-vs-hashmap ratio meaningless); their component times are
        // still compared, which is what catches a real regression. The
        // *_rss_kb deltas are excluded because resident-set accounting
        // is allocator- and kernel-dependent; the load times alongside
        // them are what regression-checks the hosting axis.
        if name == "summary_nodes" || name.ends_with("_speedup") || name.ends_with("_rss_kb") {
            continue;
        }
        compared += 1;
        if name == "serve_requests_per_sec" && !quick {
            let floor = SERVE_RPS_FLOOR_PER_CORE * count_to_f64(size_to_u64(bench_cores().min(8)));
            if *new_value < floor {
                regressions += 1;
                eprintln!(
                    "REGRESSION {name}: {new_value:.3} below the floor {floor:.0} req/s \
                     ({SERVE_RPS_FLOOR_PER_CORE:.0}/core x {} cores)",
                    bench_cores().min(8)
                );
            }
            continue;
        }
        if name == "serve_p95_us" && !quick {
            if *new_value > SERVE_P95_CEILING_US {
                regressions += 1;
                eprintln!(
                    "REGRESSION {name}: {new_value:.1} above the ceiling \
                     {SERVE_P95_CEILING_US:.0} us"
                );
            }
            continue;
        }
        let higher_is_better = name.ends_with("_per_sec");
        let regressed = if higher_is_better {
            *new_value < old_value / 2.0
        } else {
            *new_value > old_value * 2.0
        };
        if regressed {
            regressions += 1;
            eprintln!("REGRESSION {name}: {old_value:.3} -> {new_value:.3} (>2x)");
        }
    }
    if compared == 0 {
        eprintln!("baseline {path} shares no metrics with this run");
        return ExitCode::FAILURE;
    }
    if regressions > 0 {
        eprintln!("{regressions} metric(s) regressed by more than 2x vs {path}");
        return ExitCode::FAILURE;
    }
    println!("no >2x regressions vs {path} ({compared} metrics compared)");
    ExitCode::SUCCESS
}
