//! Baseline bookkeeping for incremental burn-down.
//!
//! The seed codebase predates the lint rules, so the pass records the
//! existing violations in a checked-in baseline and fails only on *new*
//! ones. The file is a sorted TSV (`rule\tfile\tcount\tnormalized
//! content`), keyed by normalized line content rather than line numbers
//! so unrelated edits that shift lines do not churn it. Deleting entries
//! (burning violations down) is always safe; `--update-baseline` rewrites
//! the file from the current state.

use std::collections::BTreeMap;

use crate::rules::Violation;

/// Baseline key: which rule fired, where, on what (content-normalized).
pub(crate) type Key = (String, String, String);

/// Collapses runs of whitespace so formatting churn does not invalidate
/// baseline entries.
pub(crate) fn normalize(content: &str) -> String {
    content.split_whitespace().collect::<Vec<_>>().join(" ")
}

pub(crate) fn key_of(violation: &Violation) -> Key {
    (violation.rule.to_owned(), violation.file.clone(), normalize(&violation.content))
}

/// Parses the TSV baseline. Unknown/malformed lines are rejected loudly —
/// a silently dropped entry would resurface as a phantom "new" violation.
pub(crate) fn parse(text: &str) -> Result<BTreeMap<Key, usize>, String> {
    let mut entries = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.splitn(4, '\t');
        let (Some(rule), Some(file), Some(count), Some(content)) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(format!("baseline line {}: expected 4 tab-separated fields", idx + 1));
        };
        let count: usize =
            count.parse().map_err(|_| format!("baseline line {}: bad count '{count}'", idx + 1))?;
        *entries.entry((rule.to_owned(), file.to_owned(), content.to_owned())).or_insert(0) +=
            count;
    }
    Ok(entries)
}

/// Renders the baseline for the current violation set.
pub(crate) fn render(violations: &[Violation]) -> String {
    render_titled("twig-lint", "cargo xtask lint --update-baseline", violations)
}

/// Renders a baseline under a pass-specific header. Both `lint` and
/// `flow` baselines share the TSV format, parser and partition logic;
/// only the banner differs.
pub(crate) fn render_titled(pass: &str, regen: &str, violations: &[Violation]) -> String {
    let mut counts: BTreeMap<Key, usize> = BTreeMap::new();
    for violation in violations {
        *counts.entry(key_of(violation)).or_insert(0) += 1;
    }
    let mut out = format!(
        "# {pass} baseline: pre-existing violations, one `rule<TAB>file<TAB>count<TAB>content`\n\
         # per line. Only delete entries (burn-down) or regenerate with\n\
         # `{regen}`.\n",
    );
    for ((rule, file, content), count) in &counts {
        out.push_str(&format!("{rule}\t{file}\t{count}\t{content}\n"));
    }
    out
}

/// Splits `violations` into (baselined, new) against `baseline`.
/// For each key the first `allowed` occurrences (in file/line order) are
/// considered baselined; any excess is new.
pub(crate) fn partition(
    violations: Vec<Violation>,
    baseline: &BTreeMap<Key, usize>,
) -> (Vec<Violation>, Vec<Violation>) {
    partition_by(violations, baseline, key_of)
}

/// Generic partition over anything with a baseline key — the flow pass
/// carries a witness chain alongside each violation, so it partitions
/// its own finding type with the same bookkeeping.
pub(crate) fn partition_by<T>(
    items: Vec<T>,
    baseline: &BTreeMap<Key, usize>,
    key_fn: impl Fn(&T) -> Key,
) -> (Vec<T>, Vec<T>) {
    let mut used: BTreeMap<Key, usize> = BTreeMap::new();
    let mut old = Vec::new();
    let mut fresh = Vec::new();
    for item in items {
        let key = key_fn(&item);
        let allowed = baseline.get(&key).copied().unwrap_or(0);
        let slot = used.entry(key).or_insert(0);
        if *slot < allowed {
            *slot += 1;
            old.push(item);
        } else {
            fresh.push(item);
        }
    }
    (old, fresh)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, line: usize, content: &str) -> Violation {
        Violation { rule, file: file.to_owned(), line, content: content.to_owned() }
    }

    #[test]
    fn roundtrip_preserves_counts() {
        let violations = vec![
            v("no-unwrap", "a.rs", 3, "x.unwrap();"),
            v("no-unwrap", "a.rs", 9, "x.unwrap();"),
            v("no-panic", "b.rs", 1, "panic!(\"boom\")"),
        ];
        let parsed = parse(&render(&violations)).expect("parses");
        assert_eq!(
            parsed.get(&("no-unwrap".into(), "a.rs".into(), "x.unwrap();".into())),
            Some(&2)
        );
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn partition_flags_only_excess() {
        let baseline = parse("no-unwrap\ta.rs\t1\tx.unwrap();\n").expect("parses");
        let (old, fresh) = partition(
            vec![
                v("no-unwrap", "a.rs", 3, "x.unwrap();"),
                v("no-unwrap", "a.rs", 9, "x.unwrap();"),
                v("no-panic", "a.rs", 5, "panic!()"),
            ],
            &baseline,
        );
        assert_eq!(old.len(), 1);
        assert_eq!(fresh.len(), 2);
    }

    #[test]
    fn normalization_survives_whitespace_churn() {
        let baseline = parse("no-unwrap\ta.rs\t1\tlet y = x.unwrap();\n").expect("parses");
        let (old, fresh) =
            partition(vec![v("no-unwrap", "a.rs", 7, "let  y =   x.unwrap();")], &baseline);
        assert_eq!(old.len(), 1);
        assert!(fresh.is_empty());
    }

    #[test]
    fn malformed_baseline_rejected() {
        assert!(parse("no-unwrap\tonly-two-fields\n").is_err());
        assert!(parse("no-unwrap\ta.rs\tNaN\tx\n").is_err());
        assert!(parse("# comment\n\n").expect("ok").is_empty());
    }
}
