//! Untrusted-input taint dataflow (`cargo xtask taint`).
//!
//! Tracks values derived from taint *sources* — HTTP read buffers
//! (`.read*(` into a buffer), deserialized frames (parameters of
//! `Cst::from_bytes` / `Cst::read_from` / `Json::parse` / `Twig::parse`
//! / `DataTree::from_xml`), and CLI/env input (`fs::read*`, `env::*`) —
//! into *sinks* where an attacker-controlled length or offset becomes a
//! panic, wraparound, or unbounded allocation:
//!
//! - slice/array indexing with a tainted index expression,
//! - `+` / `*` / `<<` (and compound forms) on a tainted operand,
//! - `Vec::with_capacity` / `.reserve(..)` / `vec![_; n]` with a
//!   tainted size,
//! - `.copy_from_slice(..)` with a tainted operand.
//!
//! A flow is *not* reported when a recognized guard intervenes: a
//! `checked_*` / `saturating_*` / `try_into` / `try_from` / `.min(` /
//! `.clamp(` call anywhere in the producing expression makes its result
//! clean, and a comparison (`<`, `<=`, `==`, …) against a tainted
//! variable sanitizes that variable for the rest of the function (a
//! linear-scan approximation of "a dominating bounds check exists").
//! `debug_assert!` bodies are skipped entirely — they vanish in release
//! builds and must not count as guards.
//!
//! # Taint lattice
//!
//! A taint value is a `u64` bitset: bit 62 (`EXT`) means "derived from
//! external input", bits `0..62` mean "derived from parameter *i* of
//! the current function". The per-expression transfer function is a
//! *blind union*: the taint of an expression is the union of the taints
//! of every known variable appearing in it (plus `EXT` for source
//! calls). This deliberately over-approximates — `a.len() + pad` taints
//! the sum with everything `a` carries — because with no type
//! information an exact dataflow would mostly be wrong in the unsound
//! direction. Joins are unions, the lattice is finite, so everything
//! below terminates.
//!
//! # Interprocedural summaries
//!
//! Each function gets a summary: `sink_params` (bitset of parameters
//! that flow into some sink inside it, transitively) and `ret_ext`
//! (the body reads external input and returns a value). Summaries are
//! computed to fixpoint over the call graph — monotone bitsets over a
//! finite lattice — so taint crosses helpers like `serialize::read_u32`:
//! the helper's `values[index]` marks param 1, and a caller passing an
//! `EXT`-tainted argument in that position reports at the call site,
//! with the helper's sink chain as the witness.
//!
//! Like lint and flow, findings burn down against `taint-baseline.tsv`
//! (keyed on normalized line content, not line numbers) and the pass
//! exits non-zero only on *new* findings. `--self-test` runs the
//! analyzer over `crates/xtask/fixtures/taint/` instead of the
//! workspace and fails unless every `// FLAG: rule` annotation is
//! flagged and every `// CLEAN` line is not.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;
use std::process::ExitCode;

use crate::analysis;
use crate::analysis::callgraph::{self, Graph};
use crate::analysis::items::{parse_file, FileModel, FnItem};
use crate::analysis::scan::{mask_source, test_line_mask};
use crate::analysis::tokens::{tokenize, Token, TokenKind};
use crate::baseline;
use crate::reach::{self, FlowFinding};
use crate::rules::Violation;

pub(crate) const TAINT_BASELINE_FILE: &str = "taint-baseline.tsv";

/// Bit 62: tainted by external input (bits 0..62 are parameter bits).
const EXT: u64 = 1 << 62;

/// Functions whose *parameters* are untrusted input. Matched as
/// `::`-aligned suffixes of the qualified path, so the fixture tree's
/// reconstructions (`xtask::Cst::from_bytes`) match the same rules as
/// the real entry points (`core::Cst::from_bytes`).
const ENTRY_SUFFIXES: &[&str] =
    &["Cst::from_bytes", "Cst::read_from", "Twig::parse", "Json::parse", "DataTree::from_xml"];

/// Path calls whose return value is external input.
const SOURCE_PATHS: &[&str] =
    &["fs::read", "fs::read_to_string", "env::var", "env::var_os", "env::args"];

/// Reader methods: `stream.read_exact(&mut buf)` taints `buf` (and the
/// result) — sockets, files and already-tainted byte cursors all
/// produce attacker-controlled bytes.
const READ_METHODS: &[&str] = &["read", "read_exact", "read_to_end", "read_to_string", "read_line"];

// Guard (sanitizer) recognition is shared with the race pass's
// unsafe-contract audit; see `analysis::guards`.
use crate::analysis::guards::is_guard_ident;

/// `::`-aligned suffix match: `core::Cst::from_bytes` matches
/// `Cst::from_bytes` but `MyCst::from_bytes` does not.
fn qual_suffix(qual: &str, suffix: &str) -> bool {
    qual == suffix || (qual.ends_with(suffix) && qual[..qual.len() - suffix.len()].ends_with("::"))
}

/// How a parameter reaches a sink, for witness chains at call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SinkChain {
    rule: &'static str,
    chain: Vec<String>,
}

/// Per-function taint summary (the interprocedural fixpoint state).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Summary {
    /// Body reads external input and the fn returns a value.
    ret_ext: bool,
    /// Parameters (by bit) that flow into a sink, transitively.
    sink_params: u64,
    /// Witness chain per sink parameter (first discovered wins; chains
    /// never mutate once inserted, keeping the fixpoint monotone).
    repr: BTreeMap<u32, SinkChain>,
}

/// Shared analysis context: models, graph, resolution index, original
/// source lines (for finding content), float-evidence lines (the `+`/`*`
/// sinks skip estimator float math, mirroring flow's div/rem rule).
pub(crate) struct Ctx<'a> {
    pub(crate) models: &'a [FileModel],
    pub(crate) graph: &'a Graph,
    by_name: BTreeMap<String, Vec<usize>>,
    float_lines: Vec<BTreeSet<usize>>,
    originals: BTreeMap<String, Vec<String>>,
    /// Self-test mode: report findings in test-path files too.
    report_all: bool,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(
        root: &Path,
        models: &'a [FileModel],
        graph: &'a Graph,
        report_all: bool,
    ) -> Self {
        let by_name = callgraph::name_index(&graph.fns);
        let float_lines = models.iter().map(|m| reach::float_hint_lines(&m.tokens)).collect();
        let mut originals = BTreeMap::new();
        for model in models {
            if let Ok(src) = fs::read_to_string(root.join(&model.file)) {
                originals.insert(model.file.clone(), src.lines().map(str::to_owned).collect());
            }
        }
        Ctx { models, graph, by_name, float_lines, originals, report_all }
    }

    fn line_content(&self, file: &str, line: usize) -> String {
        self.originals
            .get(file)
            .and_then(|lines| lines.get(line.saturating_sub(1)))
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }
}

/// One function's intraprocedural pass: a linear statement walk over
/// the body tokens, threading a variable→taint map.
struct Walker<'a> {
    ctx: &'a Ctx<'a>,
    summaries: &'a [Summary],
    tokens: &'a [Token],
    item: &'a FnItem,
    float_lines: &'a BTreeSet<usize>,
    is_entry: bool,
    param_mask: u64,
    state: BTreeMap<String, u64>,
    out: Summary,
    findings: Vec<FlowFinding>,
    /// Final pass: collect findings (fixpoint rounds only compute
    /// summaries, so nothing is double-reported).
    emit: bool,
    saw_ext_source: bool,
    reported: BTreeSet<(usize, &'static str)>,
}

fn run_one(
    ctx: &Ctx,
    summaries: &[Summary],
    idx: usize,
    emit: bool,
) -> (Summary, Vec<FlowFinding>) {
    let gf = &ctx.graph.fns[idx];
    let item = &gf.item;
    let walker = Walker {
        ctx,
        summaries,
        tokens: &ctx.models[gf.model].tokens,
        item,
        float_lines: &ctx.float_lines[gf.model],
        is_entry: ENTRY_SUFFIXES.iter().any(|s| qual_suffix(&item.qual, s)),
        param_mask: (1u64 << item.params.len().min(62)) - 1,
        state: BTreeMap::new(),
        out: Summary::default(),
        findings: Vec::new(),
        emit,
        saw_ext_source: false,
        reported: BTreeSet::new(),
    };
    walker.run()
}

/// Runs the summary fixpoint, then one reporting pass.
pub(crate) fn analyze(ctx: &Ctx) -> Vec<FlowFinding> {
    let n = ctx.graph.fns.len();
    let mut summaries = vec![Summary::default(); n];
    // Monotone bitsets over a finite lattice: the loop terminates; the
    // round cap only bounds pathological call-chain depth.
    for _round in 0..20 {
        let mut changed = false;
        for idx in 0..n {
            let (summary, _) = run_one(ctx, &summaries, idx, false);
            if summary != summaries[idx] {
                summaries[idx] = summary;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut findings = Vec::new();
    for idx in 0..n {
        let (_, mut found) = run_one(ctx, &summaries, idx, true);
        findings.append(&mut found);
    }
    findings
}

impl Walker<'_> {
    fn run(mut self) -> (Summary, Vec<FlowFinding>) {
        let Some((start, end)) = self.item.body else {
            return (self.out, self.findings);
        };
        for (i, param) in self.item.params.iter().take(62).enumerate() {
            let mut bits = 1u64 << i;
            if self.is_entry {
                bits |= EXT;
            }
            self.state.insert(param.clone(), bits);
        }
        self.analyze_block(start, end.min(self.tokens.len()));
        self.out.ret_ext = self.saw_ext_source && !self.item.ret.is_empty();
        (self.out, self.findings)
    }

    // ---- statement segmentation -------------------------------------

    fn analyze_block(&mut self, start: usize, end: usize) {
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            let next = match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "let") => self.handle_let(i, end),
                (TokenKind::Ident, "for") => self.handle_for(i, end),
                (TokenKind::Ident, "match") => self.handle_match(i, end),
                (TokenKind::Ident, "if" | "while") => {
                    if self.tokens.get(i + 1).is_some_and(|n| n.is_ident("let")) {
                        i + 1 // the `let` arm binds the scrutinee
                    } else {
                        let stop = self.find_stop(i + 1, end, true);
                        self.walk_range(i + 1, stop, true);
                        stop
                    }
                }
                (TokenKind::Ident, "loop" | "else" | "unsafe" | "move") => i + 1,
                (TokenKind::Punct, "{" | "}" | ";" | "," | "=>" | "|") => i + 1,
                _ => self.handle_statement(i, end),
            };
            i = next.max(i + 1);
        }
    }

    /// `let` bindings, including `if let` / `while let` scrutinees.
    /// Shadowing rebinding replaces the old taint — `let n = clamp(n)`
    /// re-deriving a value through a guard genuinely cleans it.
    fn handle_let(&mut self, i: usize, end: usize) -> usize {
        let if_ctx =
            i > 0 && (self.tokens[i - 1].is_ident("if") || self.tokens[i - 1].is_ident("while"));
        let mut binders = Vec::new();
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut in_type = false;
        while j < end {
            let t = &self.tokens[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    ":" if depth <= 0 => in_type = true,
                    "=" | ";" if depth <= 0 => break,
                    _ => {}
                }
            } else if !in_type && (self.is_binder(j) || (depth <= 0 && self.is_ascribed_binder(j)))
            {
                binders.push(self.tokens[j].text.clone());
            }
            j += 1;
        }
        if j < end && self.tokens[j].is_punct("=") {
            let stop = self.find_stop(j + 1, end, if_ctx);
            let val = self.walk_range(j + 1, stop, true);
            self.bind(&binders, val);
            stop
        } else {
            // `let mut x;` — fresh (clean) shadow.
            self.bind(&binders, 0);
            j
        }
    }

    fn handle_for(&mut self, i: usize, end: usize) -> usize {
        let mut binders = Vec::new();
        let mut j = i + 1;
        while j < end && !self.tokens[j].is_ident("in") {
            if self.is_binder(j) {
                binders.push(self.tokens[j].text.clone());
            }
            j += 1;
        }
        let stop = self.find_stop(j + 1, end, true);
        let val = self.walk_range(j + 1, stop, true);
        self.bind(&binders, val);
        stop
    }

    /// `match scrutinee { pat => …, … }`: arm binders inherit the
    /// scrutinee's taint (`Ok(length) => length` keeps `length` hot).
    /// The arm bodies are walked by the enclosing statement loop.
    fn handle_match(&mut self, i: usize, end: usize) -> usize {
        let open = self.find_stop(i + 1, end, true);
        let val = self.walk_range(i + 1, open, true);
        if val != 0 && open < end && self.tokens[open].is_punct("{") {
            let close = self.match_delim(open, "{", "}");
            let mut depth = 0i32;
            for k in open..close.min(end) {
                match (self.tokens[k].kind, self.tokens[k].text.as_str()) {
                    (TokenKind::Punct, "{" | "(" | "[") => depth += 1,
                    (TokenKind::Punct, "}" | ")" | "]") => depth -= 1,
                    (TokenKind::Punct, "=>") if depth == 1 => {
                        let binders = self.arm_binders(open, k);
                        self.bind(&binders, val);
                    }
                    _ => {}
                }
            }
        }
        open
    }

    /// Walks backwards from an arm's `=>` collecting its pattern
    /// binders (stops at the previous arm boundary).
    fn arm_binders(&self, open: usize, arrow: usize) -> Vec<String> {
        let mut binders = Vec::new();
        let mut depth = 0i32;
        let mut p = arrow;
        while p > open + 1 {
            p -= 1;
            let t = &self.tokens[p];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    ")" | "]" => depth += 1,
                    "(" | "[" => depth -= 1,
                    "," | "{" | "}" | ";" if depth <= 0 => break,
                    _ => {}
                }
            } else if self.is_binder(p) {
                binders.push(t.text.clone());
            }
        }
        binders
    }

    /// Assignments (plain, compound, deref) and bare expression
    /// statements. Compound `+=` / `*=` / `<<=` are arithmetic sinks
    /// themselves when either side is tainted.
    fn handle_statement(&mut self, i: usize, end: usize) -> usize {
        let mut k = i;
        if self.tokens[k].is_punct("*") {
            k += 1;
        }
        if k + 1 < end && self.tokens[k].kind == TokenKind::Ident {
            let op = &self.tokens[k + 1];
            if op.kind == TokenKind::Punct {
                let is_assign = op.text == "=";
                let compound = matches!(
                    op.text.as_str(),
                    "+=" | "-=" | "*=" | "/=" | "%=" | "<<=" | ">>=" | "&=" | "|=" | "^="
                );
                if is_assign || compound {
                    let name = self.tokens[k].text.clone();
                    let line = op.line;
                    let arith = matches!(op.text.as_str(), "+=" | "*=" | "<<=");
                    let float_exempt = op.text != "<<=" && self.float_lines.contains(&line);
                    let stop = self.find_stop(k + 2, end, false);
                    let val = self.walk_range(k + 2, stop, true);
                    let old = self.state.get(&name).copied().unwrap_or(0);
                    if arith && (old | val) != 0 && !float_exempt {
                        self.sink_hit(
                            "taint-arith",
                            line,
                            old | val,
                            format!("tainted `{}` arithmetic", op.text),
                            true,
                        );
                    }
                    let merged = if is_assign { val } else { old | val };
                    self.bind(&[name], merged);
                    return stop;
                }
            }
        }
        let stop = self.find_stop(i, end, true);
        self.walk_range(i, stop, true);
        stop
    }

    fn bind(&mut self, names: &[String], val: u64) {
        for name in names {
            if val != 0 {
                self.state.insert(name.clone(), val);
            } else {
                self.state.remove(name);
            }
        }
    }

    /// Pattern-position identifier that introduces a binding: lowercase,
    /// not a keyword, not a path segment, not a struct-pattern field key.
    fn is_binder(&self, idx: usize) -> bool {
        let t = &self.tokens[idx];
        t.kind == TokenKind::Ident
            && !matches!(t.text.as_str(), "mut" | "ref" | "box" | "_" | "if" | "in")
            && t.text.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
            && !(idx > 0 && self.tokens[idx - 1].is_punct("::"))
            && !self.tokens.get(idx + 1).is_some_and(|n| n.is_punct("::") || n.is_punct(":"))
    }

    /// `let x: T = …` — at pattern depth 0 an identifier followed by a
    /// single `:` is a type-ascribed binder, not a struct-pattern field
    /// key (field keys only occur inside `{ … }`, at depth > 0).
    fn is_ascribed_binder(&self, idx: usize) -> bool {
        let t = &self.tokens[idx];
        t.kind == TokenKind::Ident
            && !matches!(t.text.as_str(), "mut" | "ref" | "box" | "_" | "if" | "in")
            && t.text.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
            && !(idx > 0 && self.tokens[idx - 1].is_punct("::"))
            && self.tokens.get(idx + 1).is_some_and(|n| n.is_punct(":"))
    }

    /// First `;` at depth 0 (or `{` when `stop_at_brace`, or the
    /// closing delimiter of the enclosing block), token index.
    fn find_stop(&self, from: usize, end: usize, stop_at_brace: bool) -> usize {
        let mut depth = 0i32;
        let mut j = from;
        while j < end {
            let t = &self.tokens[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => {
                        depth -= 1;
                        if depth < 0 {
                            return j;
                        }
                    }
                    "{" => {
                        if stop_at_brace && depth == 0 {
                            return j;
                        }
                        depth += 1;
                    }
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            return j;
                        }
                    }
                    ";" if depth == 0 => return j,
                    _ => {}
                }
            }
            j += 1;
        }
        end
    }

    /// Index of the token closing the delimiter opened at `open`.
    fn match_delim(&self, open: usize, o: &str, c: &str) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.tokens.len() {
            if self.tokens[j].is_punct(o) {
                depth += 1;
            } else if self.tokens[j].is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.tokens.len().saturating_sub(1)
    }

    // ---- expression walk --------------------------------------------

    /// Linear walk of `tokens[start..end)`: unions variable taints into
    /// the result, detects sinks (emitted only when `emit_here` — arg
    /// sub-evaluations pass `false` so the enclosing linear walk, which
    /// also covers those tokens, reports each sink exactly once),
    /// applies guards and comparison sanitization, and consults callee
    /// summaries. Returns the expression's taint (0 if guarded).
    fn walk_range(&mut self, start: usize, end: usize, emit_here: bool) -> u64 {
        let mut acc = 0u64;
        let mut guarded = false;
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "vec")
                    if self.tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
                {
                    // `vec![elem; len]`: the length is an allocation size.
                    if self.tokens.get(i + 2).is_some_and(|n| n.is_punct("[")) {
                        let close = self.match_delim(i + 2, "[", "]");
                        let mut depth = 0i32;
                        for k in i + 3..close {
                            match self.tokens[k].text.as_str() {
                                "(" | "[" | "{" if self.tokens[k].kind == TokenKind::Punct => {
                                    depth += 1
                                }
                                ")" | "]" | "}" if self.tokens[k].kind == TokenKind::Punct => {
                                    depth -= 1
                                }
                                ";" if depth == 0 && self.tokens[k].kind == TokenKind::Punct => {
                                    let len_taint = self.walk_range(k + 1, close, false);
                                    if len_taint != 0 {
                                        self.sink_hit(
                                            "taint-alloc",
                                            t.line,
                                            len_taint,
                                            "tainted `vec![_; n]` length".to_owned(),
                                            emit_here,
                                        );
                                    }
                                    break;
                                }
                                _ => {}
                            }
                        }
                    }
                    i += 2;
                }
                (TokenKind::Ident, name) if name.starts_with("debug_assert") => {
                    // Compiled out in release: neither a sink nor a guard.
                    if self.tokens.get(i + 1).is_some_and(|n| n.is_punct("!"))
                        && self.tokens.get(i + 2).is_some_and(|n| n.is_punct("("))
                    {
                        i = self.match_delim(i + 2, "(", ")") + 1;
                    } else {
                        i += 1;
                    }
                }
                (TokenKind::Ident, name) => {
                    let prev_dot = i > 0 && self.tokens[i - 1].is_punct(".");
                    let prev_fn = i > 0 && self.tokens[i - 1].is_ident("fn");
                    if !prev_dot && !prev_fn && !NON_CALL_IDENTS.contains(&name) {
                        // Collect a path (`a::b::name`, turbofish skipped).
                        let mut path = vec![t.text.clone()];
                        let mut j = i + 1;
                        loop {
                            if self.at_punct(j, "::") {
                                if self.at_punct(j + 1, "<") {
                                    j = self.skip_angles(j + 1);
                                    continue;
                                }
                                if self
                                    .tokens
                                    .get(j + 1)
                                    .is_some_and(|n| n.kind == TokenKind::Ident)
                                {
                                    path.push(self.tokens[j + 1].text.clone());
                                    j += 2;
                                    continue;
                                }
                            }
                            break;
                        }
                        if self.at_punct(j, "(") {
                            if path.last().is_some_and(|l| is_guard_ident(l)) {
                                guarded = true;
                            }
                            if path[0] == "Self" {
                                match self.item.impl_type.as_deref() {
                                    Some(ty) => path[0] = ty.to_owned(),
                                    None => {
                                        path.remove(0);
                                    }
                                }
                            }
                            acc |= self.handle_call(&path, false, t.line, None, j, emit_here);
                            i = j;
                            continue;
                        }
                        if self.at_punct(j, "!") {
                            // Macro: not a call; its args are walked normally.
                            i = j;
                            continue;
                        }
                    }
                    if !prev_dot {
                        if let Some(&bits) = self.state.get(name) {
                            acc |= bits;
                        }
                    }
                    i += 1;
                }
                (TokenKind::Punct, ".") => {
                    if let Some(next) = self.tokens.get(i + 1) {
                        if next.kind == TokenKind::Ident {
                            let mut j = i + 2;
                            if self.at_punct(j, "::") && self.at_punct(j + 1, "<") {
                                j = self.skip_angles(j + 1);
                            }
                            if self.at_punct(j, "(") {
                                if is_guard_ident(&next.text) {
                                    guarded = true;
                                }
                                let path = [next.text.clone()];
                                acc |=
                                    self.handle_call(&path, true, next.line, Some(i), j, emit_here);
                                i = j;
                                continue;
                            }
                        }
                    }
                    i += 1;
                }
                (TokenKind::Punct, "[") if i > 0 => {
                    let prev = &self.tokens[i - 1];
                    let indexes = match prev.kind {
                        TokenKind::Ident => !reach::NON_INDEX_PREV.contains(&prev.text.as_str()),
                        TokenKind::Punct => prev.text == ")" || prev.text == "]",
                        _ => false,
                    };
                    if indexes {
                        let close = self.match_delim(i, "[", "]");
                        let idx_taint = self.walk_range(i + 1, close, false);
                        if idx_taint != 0 {
                            self.sink_hit(
                                "taint-index",
                                t.line,
                                idx_taint,
                                "tainted slice/array index".to_owned(),
                                emit_here,
                            );
                        }
                    }
                    i += 1;
                }
                (TokenKind::Punct, "+" | "*") => {
                    let binary = i > 0
                        && match self.tokens[i - 1].kind {
                            TokenKind::Ident => {
                                !reach::NON_INDEX_PREV.contains(&self.tokens[i - 1].text.as_str())
                            }
                            TokenKind::Number => true,
                            TokenKind::Punct => {
                                self.tokens[i - 1].text == ")" || self.tokens[i - 1].text == "]"
                            }
                            _ => false,
                        };
                    if binary && !self.float_lines.contains(&t.line) {
                        let bits = self.window_taint(i, start, end);
                        if bits != 0 {
                            self.sink_hit(
                                "taint-arith",
                                t.line,
                                bits,
                                format!("tainted `{}` arithmetic", t.text),
                                emit_here,
                            );
                        }
                    }
                    i += 1;
                }
                (TokenKind::Punct, "<<") => {
                    let bits = self.window_taint(i, start, end);
                    if bits != 0 {
                        self.sink_hit(
                            "taint-arith",
                            t.line,
                            bits,
                            "tainted `<<` shift".to_owned(),
                            emit_here,
                        );
                    }
                    i += 1;
                }
                (TokenKind::Punct, "<" | ">" | "<=" | ">=" | "==" | "!=") => {
                    self.sanitize_window(i, start, end);
                    i += 1;
                }
                _ => i += 1,
            }
        }
        if guarded {
            0
        } else {
            acc
        }
    }

    /// Union of tainted identifiers adjacent to an operator (±4 tokens,
    /// clipped at expression boundaries).
    fn window_taint(&self, i: usize, start: usize, end: usize) -> u64 {
        let mut bits = 0u64;
        let mut j = i;
        let lo = start.max(i.saturating_sub(4));
        while j > lo {
            j -= 1;
            let t = &self.tokens[j];
            if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "," | "{" | "}") {
                break;
            }
            if t.kind == TokenKind::Ident {
                if let Some(&b) = self.state.get(&t.text) {
                    bits |= b;
                }
            }
        }
        let hi = end.min(i + 5);
        for t in &self.tokens[(i + 1).min(hi)..hi] {
            if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "," | "{" | "}") {
                break;
            }
            if t.kind == TokenKind::Ident {
                if let Some(&b) = self.state.get(&t.text) {
                    bits |= b;
                }
            }
        }
        bits
    }

    /// A comparison sanitizes adjacent tainted variables — but not a
    /// variable that is merely *derived from* (`buffer.len() < 4` must
    /// not clean `buffer` itself, only values compared directly).
    fn sanitize_window(&mut self, i: usize, start: usize, end: usize) {
        let lo = start.max(i.saturating_sub(3));
        let hi = end.min(i + 4);
        for j in lo..hi {
            if j == i {
                continue;
            }
            let t = &self.tokens[j];
            if t.kind != TokenKind::Ident || !self.state.contains_key(&t.text) {
                continue;
            }
            let derived = self
                .tokens
                .get(j + 1)
                .is_some_and(|n| n.is_punct(".") || n.is_punct("(") || n.is_punct("["));
            if !derived {
                self.state.remove(&t.text.clone());
            }
        }
    }

    /// One call site: syntactic sinks by callee name, source detection,
    /// summary-carried sinks, `&mut` out-parameter tainting. Returns
    /// the call's contribution to the enclosing expression's taint.
    fn handle_call(
        &mut self,
        path: &[String],
        method: bool,
        line: usize,
        dot_idx: Option<usize>,
        open: usize,
        emit_here: bool,
    ) -> u64 {
        let close = self.match_delim(open, "(", ")");
        let rcv = dot_idx.map_or(0, |d| self.back_union(d));
        let args = self.split_args(open, close);
        let arg_taints: Vec<u64> =
            args.iter().map(|&(s, e)| self.walk_range(s, e, false)).collect();
        let all_args = arg_taints.iter().fold(0u64, |a, &b| a | b);
        let last = path.last().map(String::as_str).unwrap_or("");

        match last {
            "with_capacity" | "reserve" | "reserve_exact" | "resize" => {
                let size = arg_taints.first().copied().unwrap_or(0);
                if size != 0 {
                    self.sink_hit(
                        "taint-alloc",
                        line,
                        size,
                        format!("tainted allocation size in `{last}`"),
                        emit_here,
                    );
                }
            }
            "copy_from_slice" => {
                let bits = all_args | rcv;
                if bits != 0 {
                    self.sink_hit(
                        "taint-copy",
                        line,
                        bits,
                        "tainted operand reaches `copy_from_slice`".to_owned(),
                        emit_here,
                    );
                }
            }
            _ => {}
        }

        let mut ext = 0u64;
        let source = if method {
            // Reader methods always take a destination buffer;
            // requiring an argument keeps `RwLock::read()` (and other
            // zero-arg `read` homonyms) from counting as input sources.
            READ_METHODS.contains(&last) && !args.is_empty()
        } else {
            // Entry points count at the call site too: the value
            // `Cst::from_bytes(..)` returns is attacker-shaped data,
            // not just its `bytes` argument.
            let joined = path.join("::");
            SOURCE_PATHS.iter().any(|s| {
                let segs: Vec<&str> = s.split("::").collect();
                path.len() >= segs.len()
                    && path[path.len() - segs.len()..]
                        .iter()
                        .map(String::as_str)
                        .eq(segs.iter().copied())
            }) || ENTRY_SUFFIXES.iter().any(|s| qual_suffix(&joined, s))
        };
        if source {
            ext |= EXT;
            self.saw_ext_source = true;
        }

        for callee in callgraph::resolve_site(&self.ctx.graph.fns, &self.ctx.by_name, path, method)
        {
            let summ = &self.summaries[callee];
            if summ.ret_ext {
                ext |= EXT;
            }
            if summ.sink_params == 0 {
                continue;
            }
            for (j, &at) in arg_taints.iter().enumerate() {
                if at == 0 || j >= 62 || summ.sink_params & (1 << j) == 0 {
                    continue;
                }
                let chain = summ.repr.get(&(j as u32));
                let rule = chain.map_or("taint-index", |c| c.rule);
                let mut full = vec![format!(
                    "{} ({}:{}) passes tainted arg {} into",
                    self.item.qual,
                    self.item.file,
                    line,
                    j + 1
                )];
                if let Some(c) = chain {
                    full.extend(c.chain.iter().cloned());
                }
                if at & EXT != 0 && emit_here {
                    self.emit_finding(rule, line, full.clone());
                }
                let pbits = at & self.param_mask;
                if pbits != 0 {
                    self.out.sink_params |= pbits;
                    for b in 0..62u32 {
                        if pbits & (1 << b) != 0 {
                            self.out
                                .repr
                                .entry(b)
                                .or_insert_with(|| SinkChain { rule, chain: full.clone() });
                        }
                    }
                }
            }
        }

        // `r.read_exact(&mut buf)` and friends write external or
        // receiver-derived bytes into their out-parameters.
        let carry = rcv | all_args | ext;
        if carry != 0 {
            let mut k = open;
            while k + 2 < close {
                if self.tokens[k].is_punct("&")
                    && self.tokens[k + 1].is_ident("mut")
                    && self.tokens[k + 2].kind == TokenKind::Ident
                {
                    let name = self.tokens[k + 2].text.clone();
                    *self.state.entry(name).or_insert(0) |= carry;
                }
                k += 1;
            }
        }
        ext
    }

    /// Receiver taint: tainted identifiers in the short chain before a
    /// method's `.` (stops at statement/argument boundaries).
    fn back_union(&self, dot: usize) -> u64 {
        let mut bits = 0u64;
        let mut j = dot;
        let lo = dot.saturating_sub(6);
        while j > lo {
            j -= 1;
            let t = &self.tokens[j];
            if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ";" | "," | "{" | "}" | "=")
            {
                break;
            }
            if t.kind == TokenKind::Ident {
                if let Some(&b) = self.state.get(&t.text) {
                    bits |= b;
                }
            }
        }
        bits
    }

    /// Top-level comma split of the argument tokens in `(open..close)`.
    fn split_args(&self, open: usize, close: usize) -> Vec<(usize, usize)> {
        let mut args = Vec::new();
        let mut depth = 0i32;
        let mut arg_start = open + 1;
        for j in open + 1..close {
            let t = &self.tokens[j];
            if t.kind != TokenKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    args.push((arg_start, j));
                    arg_start = j + 1;
                }
                _ => {}
            }
        }
        if arg_start < close {
            args.push((arg_start, close));
        }
        args
    }

    fn at_punct(&self, i: usize, punct: &str) -> bool {
        self.tokens.get(i).is_some_and(|t| t.is_punct(punct))
    }

    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < self.tokens.len() {
            match self.tokens[j].text.as_str() {
                "<" if self.tokens[j].kind == TokenKind::Punct => depth += 1,
                "<<" if self.tokens[j].kind == TokenKind::Punct => depth += 2,
                ">" if self.tokens[j].kind == TokenKind::Punct => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                ">>" if self.tokens[j].kind == TokenKind::Punct => {
                    depth -= 2;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.tokens.len()
    }

    // ---- sinks ------------------------------------------------------

    /// Records a sink hit: EXT taint becomes a finding (final pass,
    /// in-scope files only); parameter bits feed the summary.
    fn sink_hit(
        &mut self,
        rule: &'static str,
        line: usize,
        bits: u64,
        what: String,
        emit_here: bool,
    ) {
        if bits & EXT != 0 && emit_here {
            let mut witness =
                vec![format!("{} ({}:{}): {}", self.item.qual, self.item.file, line, what)];
            if self.is_entry {
                witness.push(format!(
                    "parameters of {} carry untrusted input (taint entry point)",
                    self.item.qual
                ));
            } else {
                witness.push("tainted by an external read in this function".to_owned());
            }
            self.emit_finding(rule, line, witness);
        }
        let pbits = bits & self.param_mask;
        if pbits != 0 {
            self.out.sink_params |= pbits;
            for b in 0..62u32 {
                if pbits & (1 << b) != 0 {
                    self.out.repr.entry(b).or_insert_with(|| SinkChain {
                        rule,
                        chain: vec![format!(
                            "{} ({}:{}) sinks: {}",
                            self.item.qual, self.item.file, line, what
                        )],
                    });
                }
            }
        }
    }

    fn emit_finding(&mut self, rule: &'static str, line: usize, witness: Vec<String>) {
        if !self.emit {
            return;
        }
        if !self.ctx.report_all && self.item.in_test {
            return;
        }
        if !self.reported.insert((line, rule)) {
            return;
        }
        self.findings.push(FlowFinding {
            violation: Violation {
                rule,
                file: self.item.file.clone(),
                line,
                content: self.ctx.line_content(&self.item.file, line),
            },
            witness,
        });
    }
}

/// Keywords that look like call names but are not (shared shape with
/// the call-graph extractor; `vec`/`debug_assert` handled earlier).
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "let", "else", "move", "in", "as", "break",
    "continue", "where", "unsafe", "ref", "mut", "box", "dyn", "impl", "fn", "use", "pub", "mod",
    "const", "static", "type", "enum", "struct", "trait", "true", "false", "super", "crate",
];

// ---- task entry -----------------------------------------------------

pub(crate) fn taint_task(args: &[String]) -> ExitCode {
    let started = std::time::Instant::now();
    let mut rest = Vec::new();
    let mut self_test = false;
    for arg in args {
        if arg == "--self-test" {
            self_test = true;
        } else {
            rest.push(arg.clone());
        }
    }
    let crate::PassArgs { json, update, baseline_path, root } = match crate::parse_pass_args(&rest)
    {
        Ok(parsed) => parsed,
        Err(message) => return crate::usage_error(&message),
    };
    let root = root.unwrap_or_else(crate::workspace_root);
    if self_test {
        return run_self_test(&root);
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(TAINT_BASELINE_FILE));

    let files = analysis::workspace_files(&root);
    let models = analysis::build_models(&root, &files);
    let graph = callgraph::build(&models);
    let ctx = Ctx::new(&root, &models, &graph, false);
    let mut findings = analyze(&ctx);
    findings.extend(crate::hotalloc::analyze(&ctx));
    findings.sort_by(|a, b| {
        (&a.violation.file, a.violation.line, a.violation.rule).cmp(&(
            &b.violation.file,
            b.violation.line,
            b.violation.rule,
        ))
    });

    if update {
        let violations: Vec<Violation> = findings.iter().map(|f| f.violation.clone()).collect();
        let rendered = baseline::render_titled(
            "twig-taint",
            "cargo xtask taint --update-baseline",
            &violations,
        );
        if let Err(err) = fs::write(&baseline_path, rendered) {
            eprintln!("error: cannot write {}: {err}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "baseline updated: {} finding(s) across {} file(s) recorded in {}",
            findings.len(),
            files.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(parsed) => parsed,
            Err(err) => {
                eprintln!("error: {}: {err}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Default::default(), // no baseline: everything is new
    };
    let scanned = files.len();
    let (old, fresh) =
        baseline::partition_by(findings, &baseline, |f| baseline::key_of(&f.violation));

    let elapsed_ms = started.elapsed().as_millis();
    if json {
        println!("{}", crate::flow_json_report("twig-taint", scanned, &old, &fresh, elapsed_ms));
    } else {
        crate::flow_human_report("twig-taint", scanned, &old, &fresh, elapsed_ms);
    }
    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---- fixture self-test ----------------------------------------------

/// Runs both passes over `crates/xtask/fixtures/taint/` and checks the
/// annotations: every `// FLAG: rule[,rule]` line must produce each
/// named finding on that exact line; `// CLEAN` lines must produce
/// none. Exits non-zero on any miss or false positive.
fn run_self_test(root: &Path) -> ExitCode {
    let fixture_dir = root.join("crates/xtask/fixtures/taint");
    let mut files = Vec::new();
    analysis::collect_rs_files(root, &fixture_dir, &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!("error: no fixtures under {}", fixture_dir.display());
        return ExitCode::FAILURE;
    }

    // Fixture files are under crates/xtask (a test path), so build the
    // models with the test flag forced off: the self-test must exercise
    // the same reporting rules production code gets.
    let mut models = Vec::new();
    let mut sources = BTreeMap::new();
    for file in &files {
        match fs::read_to_string(root.join(file)) {
            Ok(src) => {
                let masked = mask_source(&src);
                let test_lines = test_line_mask(&masked);
                models.push(parse_file(file, tokenize(&masked), &test_lines, false));
                sources.insert(file.clone(), src);
            }
            Err(err) => {
                eprintln!("error: cannot read {file}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    let graph = callgraph::build(&models);
    let ctx = Ctx::new(root, &models, &graph, true);
    let mut findings = analyze(&ctx);
    findings.extend(crate::hotalloc::analyze(&ctx));

    let mut failures = 0usize;
    let mut checks = 0usize;
    for file in &files {
        let Some(src) = sources.get(file) else { continue };
        for (idx, text) in src.lines().enumerate() {
            let line = idx + 1;
            if let Some(pos) = text.find("// FLAG:") {
                for rule in text[pos + "// FLAG:".len()..].split(',') {
                    let rule = rule.trim();
                    checks += 1;
                    let hit = findings.iter().any(|f| {
                        f.violation.rule == rule
                            && f.violation.file == *file
                            && f.violation.line == line
                    });
                    if hit {
                        println!("ok   {file}:{line} [{rule}]");
                    } else {
                        println!("MISS {file}:{line} [{rule}] — known-bad pattern not flagged");
                        failures += 1;
                    }
                }
            } else if text.contains("// CLEAN") {
                checks += 1;
                match findings
                    .iter()
                    .find(|f| f.violation.file == *file && f.violation.line == line)
                {
                    Some(f) => {
                        println!(
                            "FALSE POSITIVE {file}:{line} [{}] — line annotated CLEAN",
                            f.violation.rule
                        );
                        failures += 1;
                    }
                    None => println!("ok   {file}:{line} [clean]"),
                }
            }
        }
    }
    println!(
        "twig-taint self-test: {checks} annotation(s) checked, {failures} failure(s), \
         {} finding(s) total",
        findings.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::callgraph::build;

    fn run(files: &[(&str, &str)]) -> Vec<FlowFinding> {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(file, src)| {
                let masked = mask_source(src);
                let test_lines = test_line_mask(&masked);
                parse_file(file, tokenize(&masked), &test_lines, false)
            })
            .collect();
        let graph = build(&models);
        // No `root` on disk for synthetic sources: content lookup
        // degrades to "", which is fine for assertions on rule/line.
        let ctx = Ctx::new(Path::new("/nonexistent"), &models, &graph, true);
        analyze(&ctx)
    }

    fn rules_of(findings: &[FlowFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.violation.rule).collect()
    }

    #[test]
    fn entry_param_taints_an_index() {
        let findings = run(&[(
            "crates/serve/src/json.rs",
            "impl Json { pub fn parse(text: &str) -> u8 { let i = text.len(); TAB[i] } }",
        )]);
        assert_eq!(rules_of(&findings), ["taint-index"], "{findings:?}");
    }

    #[test]
    fn type_ascribed_let_still_binds_taint() {
        // `let n: usize = …` — the `:` must not be mistaken for a
        // struct-pattern field key (which would drop the binding).
        let findings = run(&[(
            "crates/serve/src/json.rs",
            "impl Json { pub fn parse(text: &str) -> u8 {\n\
             let n: usize = text.len();\n\
             TAB[n] } }",
        )]);
        assert_eq!(rules_of(&findings), ["taint-index"], "{findings:?}");
    }

    #[test]
    fn array_return_type_does_not_lose_the_body() {
        // The `;` inside `-> [u8; 8]` must not terminate fn-head
        // parsing — the body would silently go unanalyzed.
        let findings = run(&[(
            "crates/serve/src/http.rs",
            "impl Twig { pub fn parse(bytes: &[u8]) -> [u8; 8] {\n\
             let mut head = [0u8; 8];\n\
             head.copy_from_slice(bytes);\n\
             head } }",
        )]);
        assert_eq!(rules_of(&findings), ["taint-copy"], "{findings:?}");
    }

    #[test]
    fn turbofish_alloc_call_is_still_a_sink() {
        // The nested turbofish must be skipped to see `with_capacity`.
        let findings = run(&[(
            "crates/serve/src/json.rs",
            "impl Json { pub fn parse(text: &str) -> usize {\n\
             let n = text.len();\n\
             Vec::<Vec<u8>>::with_capacity(n).capacity() } }",
        )]);
        assert_eq!(rules_of(&findings), ["taint-alloc"], "{findings:?}");
    }

    #[test]
    fn question_mark_chains_propagate_taint() {
        let findings = run(&[(
            "crates/serve/src/json.rs",
            "impl Json { pub fn parse(text: &str) -> Option<u8> {\n\
             let n = text.find(':')?.checked_sub(1)?;\n\
             let m = text.find(',')?;\n\
             Some(TAB[m]) } }",
        )]);
        assert_eq!(rules_of(&findings), ["taint-index"], "{findings:?}");
    }

    #[test]
    fn zero_arg_read_homonyms_are_not_sources() {
        // `RwLock::read()` shares a name with `Read::read` but takes no
        // destination buffer — it must not taint its result.
        let findings = run(&[(
            "crates/serve/src/registry.rs",
            "fn snapshot(lock: &RwLock<Vec<u64>>) -> u64 {\n\
             let guard = lock.read().unwrap();\n\
             let n = guard.len();\n\
             guard[n - 1] }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn entry_call_site_returns_external_data() {
        // The value `Cst::from_bytes(..)` hands back is attacker-shaped
        // even when the caller's own arguments are trusted.
        let findings = run(&[(
            "crates/core/src/load.rs",
            "fn probe(bytes: &[u8], table: &[u8]) -> u8 {\n\
             let n = Cst::from_bytes(bytes).map(|c| c.node_count()).unwrap_or(0);\n\
             table[n] }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].violation.rule, "taint-index");
    }

    #[test]
    fn min_guard_cleans_the_expression() {
        let findings = run(&[(
            "crates/serve/src/json.rs",
            "impl Json { pub fn parse(text: &str) -> u8 { let i = text.len().min(7); TAB[i] } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn comparison_sanitizes_a_variable() {
        let findings = run(&[(
            "crates/serve/src/json.rs",
            "impl Json { pub fn parse(text: &str) -> u8 {\n\
             let i = text.len();\n\
             if i < 7 { return TAB[i]; }\n\
             0 } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn length_comparison_does_not_clean_the_buffer_itself() {
        // `buffer.len() < 4` must not sanitize `buffer`: the later
        // tainted-index on a value derived from it still fires.
        let findings = run(&[(
            "crates/serve/src/http.rs",
            "impl Json { pub fn parse(buffer: &str) -> u8 {\n\
             if buffer.len() < 4 { return 0; }\n\
             let end = locate(buffer);\n\
             TAB[end]\n\
             } }\n\
             fn locate(b: &str) -> usize { b.len() }",
        )]);
        assert_eq!(rules_of(&findings), ["taint-index"], "{findings:?}");
    }

    #[test]
    fn arithmetic_and_alloc_sinks_fire() {
        let findings = run(&[(
            "crates/core/src/serialize.rs",
            "impl Cst { pub fn from_bytes(bytes: &str) -> usize {\n\
             let count = bytes.len();\n\
             let total = count + 8;\n\
             let mut v = Vec::with_capacity(count);\n\
             v.push(total); v.len()\n\
             } }",
        )]);
        let mut rules = rules_of(&findings);
        rules.sort_unstable();
        assert_eq!(rules, ["taint-alloc", "taint-arith"], "{findings:?}");
    }

    #[test]
    fn checked_add_guards_arithmetic() {
        let findings = run(&[(
            "crates/core/src/serialize.rs",
            "impl Cst { pub fn from_bytes(bytes: &str) -> usize {\n\
             let count = bytes.len();\n\
             let total = count.checked_add(8).unwrap_or(0);\n\
             total } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn float_lines_are_exempt_from_arith() {
        let findings = run(&[(
            "crates/core/src/estimate.rs",
            "impl Twig { pub fn parse(q: &str) -> f64 {\n\
             let sel = q.len();\n\
             count_to_f64(sel) * 1.5\n\
             } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn shadowing_rebind_clears_taint() {
        let findings = run(&[(
            "crates/serve/src/json.rs",
            "impl Json { pub fn parse(text: &str) -> u8 {\n\
             let n = text.len();\n\
             let n = 3;\n\
             TAB[n]\n\
             } }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn compound_add_assign_is_an_arith_sink() {
        let findings = run(&[(
            "crates/serve/src/http.rs",
            "impl Json { pub fn parse(text: &str) -> usize {\n\
             let n = text.len();\n\
             let mut total = 0;\n\
             total += n;\n\
             total } }",
        )]);
        assert_eq!(rules_of(&findings), ["taint-arith"], "{findings:?}");
    }

    #[test]
    fn read_methods_taint_their_buffer() {
        let findings = run(&[(
            "crates/serve/src/http.rs",
            "pub fn recv(stream: &mut TcpStream) -> u8 {\n\
             let mut buf = Vec::new();\n\
             stream.read_to_end(&mut buf);\n\
             let end = locate(&buf);\n\
             TAB[end]\n\
             }\n\
             fn locate(b: &[u8]) -> usize { b.len() }",
        )]);
        assert_eq!(rules_of(&findings), ["taint-index"], "{findings:?}");
    }

    #[test]
    fn summaries_carry_taint_across_helpers() {
        let findings = run(&[(
            "crates/core/src/serialize.rs",
            "impl Cst { pub fn read_from(frame: &str) -> u64 {\n\
             let offset = read_u32(frame);\n\
             pick(offset)\n\
             } }\n\
             fn read_u32(input: &str) -> usize { input.len() }\n\
             fn pick(index: usize) -> u64 { TABLE[index] }",
        )]);
        assert_eq!(rules_of(&findings), ["taint-index"], "{findings:?}");
        // The finding anchors at the caller's call site, with the
        // helper's sink as the witness tail.
        assert_eq!(findings[0].violation.line, 3, "{findings:?}");
        let witness = findings[0].witness.join("\n");
        assert!(witness.contains("passes tainted arg 1"), "{witness}");
        assert!(witness.contains("pick"), "{witness}");
    }

    #[test]
    fn match_arms_bind_the_scrutinee_taint() {
        let findings = run(&[(
            "crates/serve/src/http.rs",
            "impl Json { pub fn parse(text: &str) -> u8 {\n\
             let r = text.len();\n\
             match probe(r) {\n\
             Some(length) => TAB[length],\n\
             None => 0,\n\
             }\n\
             } }\n\
             fn probe(n: usize) -> Option<usize> { Some(n) }",
        )]);
        assert!(rules_of(&findings).contains(&"taint-index"), "{findings:?}");
    }

    #[test]
    fn test_code_is_not_reported_outside_self_test() {
        let models: Vec<FileModel> = [(
            "crates/core/tests/x.rs",
            "impl Json { pub fn parse(text: &str) -> u8 { TAB[text.len()] } }",
        )]
        .iter()
        .map(|(file, src)| {
            let masked = mask_source(src);
            let test_lines = test_line_mask(&masked);
            parse_file(file, tokenize(&masked), &test_lines, crate::rules::test_path(file))
        })
        .collect();
        let graph = build(&models);
        let ctx = Ctx::new(Path::new("/nonexistent"), &models, &graph, false);
        assert!(analyze(&ctx).is_empty());
    }
}
