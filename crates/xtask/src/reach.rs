//! Panic-source classification and reachability fixpoint.
//!
//! A function is a *direct* panic source when its body contains any of:
//!
//! - a panic-family macro (`panic!`, `assert!`, `assert_eq!`,
//!   `assert_ne!`, `unreachable!`, `todo!`, `unimplemented!`),
//! - `.unwrap()` / `.expect(` on anything,
//! - indexing or slicing (`x[i]`, `x[a..b]`) — `get` is the checked way,
//! - `.copy_from_slice(` (length-mismatch panics),
//! - integer `/`/`%` (incl. `/=`, `%=`) with a non-literal divisor —
//!   float division never panics, so lines with float evidence
//!   (`f64`/`f32` identifiers or float literals) are exempt, as are
//!   literal divisors (a literal `0` divisor is a compile error).
//!
//! Reachability then propagates over the call graph to a fixpoint: a
//! function can panic if it is a direct source or can call one. Every
//! `pub` entry point of a strict-scope crate that can reach a panic is
//! reported with a *witness chain* — the shortest call path from the
//! entry to a direct source, with the call line of every hop. Witnesses
//! are diagnostics only; the baseline is keyed on the entry point, so
//! refactoring an intermediate hop does not churn it.

use std::collections::{BTreeSet, VecDeque};

use crate::analysis::callgraph::Graph;
use crate::analysis::items::FileModel;
use crate::analysis::tokens::{Token, TokenKind};
use crate::rules::Violation;

/// Why a function is a direct panic source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PanicSource {
    /// Human-readable source kind (`assert!`, `indexing`, …).
    pub(crate) what: String,
    /// 1-based line of the source.
    pub(crate) line: usize,
}

const PANIC_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];

/// Identifiers that precede `[` without forming an index expression.
/// Shared with the taint pass's tainted-index sink detection.
pub(crate) const NON_INDEX_PREV: &[&str] = &[
    "let", "in", "if", "return", "match", "else", "move", "mut", "ref", "box", "as", "break",
    "continue", "where",
];

/// Lines of a file with float evidence: an identifier mentioning
/// `f64`/`f32` (the type itself, or a helper like
/// `twig_util::cast::count_to_f64`) or a float literal. Integer div/rem
/// detection skips these lines — the tokenizer has no types, and
/// flagging every `f64` division would drown the report in estimator
/// arithmetic that cannot panic.
pub(crate) fn float_hint_lines(tokens: &[Token]) -> BTreeSet<usize> {
    let mut lines = BTreeSet::new();
    for t in tokens {
        let is_hint = matches!(t.kind, TokenKind::Ident if t.text.contains("f64") || t.text.contains("f32"))
            || t.is_float();
        if is_hint {
            lines.insert(t.line);
        }
    }
    lines
}

/// The first direct panic source in `tokens[range]`, if any.
pub(crate) fn direct_panic_source(
    tokens: &[Token],
    range: (usize, usize),
    float_lines: &BTreeSet<usize>,
) -> Option<PanicSource> {
    let (start, end) = range;
    let end = end.min(tokens.len());
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        match (&t.kind, t.text.as_str()) {
            (TokenKind::Ident, name)
                if PANIC_MACROS.contains(&name)
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                return Some(PanicSource { what: format!("{name}!"), line: t.line });
            }
            (TokenKind::Punct, ".") => {
                if let Some(next) = tokens.get(i + 1) {
                    if next.kind == TokenKind::Ident
                        && tokens.get(i + 2).is_some_and(|p| p.is_punct("("))
                    {
                        match next.text.as_str() {
                            "unwrap" => {
                                return Some(PanicSource {
                                    what: ".unwrap()".into(),
                                    line: next.line,
                                })
                            }
                            "expect" => {
                                return Some(PanicSource {
                                    what: ".expect(..)".into(),
                                    line: next.line,
                                })
                            }
                            "copy_from_slice" => {
                                return Some(PanicSource {
                                    what: ".copy_from_slice(..)".into(),
                                    line: next.line,
                                })
                            }
                            _ => {}
                        }
                    }
                }
                i += 1;
            }
            (TokenKind::Punct, "[") if i > start => {
                let prev = &tokens[i - 1];
                let indexes = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_PREV.contains(&prev.text.as_str()),
                    TokenKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                if indexes {
                    return Some(PanicSource { what: "indexing".into(), line: t.line });
                }
                i += 1;
            }
            (TokenKind::Punct, "/" | "%" | "/=" | "%=") if i > start => {
                let prev = &tokens[i - 1];
                let next = tokens.get(i + 1);
                let expr_prev = match prev.kind {
                    TokenKind::Ident => !NON_INDEX_PREV.contains(&prev.text.as_str()),
                    TokenKind::Number => !prev.is_float(),
                    TokenKind::Punct => prev.text == ")" || prev.text == "]",
                    _ => false,
                };
                let literal_divisor =
                    next.is_some_and(|n| n.kind == TokenKind::Number && !n.is_float());
                let float_divisor = next.is_some_and(Token::is_float);
                let float_line = float_lines.contains(&t.line)
                    || next.is_some_and(|n| float_lines.contains(&n.line));
                if expr_prev && !literal_divisor && !float_divisor && !float_line {
                    return Some(PanicSource {
                        what: format!("integer `{}` with non-literal divisor", t.text),
                        line: t.line,
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Reachability result over a [`Graph`].
pub(crate) struct Reach {
    /// Direct panic source per fn.
    pub(crate) direct: Vec<Option<PanicSource>>,
    /// Hops to the nearest direct source (`Some(0)` = direct).
    pub(crate) dist: Vec<Option<u32>>,
    /// Next hop toward the witness sink: `(callee index, call line)`.
    pub(crate) via: Vec<Option<(usize, usize)>>,
}

/// Classifies direct sources and runs the fixpoint (a reverse BFS from
/// all direct sources, so every reachable fn gets a *shortest* witness).
pub(crate) fn propagate(models: &[FileModel], graph: &Graph) -> Reach {
    let float_lines: Vec<BTreeSet<usize>> =
        models.iter().map(|m| float_hint_lines(&m.tokens)).collect();
    let mut direct = Vec::with_capacity(graph.fns.len());
    for f in &graph.fns {
        let source = f.item.body.and_then(|body| {
            direct_panic_source(&models[f.model].tokens, body, &float_lines[f.model])
        });
        direct.push(source);
    }

    let mut reverse: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.fns.len()];
    for (caller, edges) in graph.edges.iter().enumerate() {
        for edge in edges {
            reverse[edge.callee].push((caller, edge.line));
        }
    }

    let mut dist: Vec<Option<u32>> = vec![None; graph.fns.len()];
    let mut via: Vec<Option<(usize, usize)>> = vec![None; graph.fns.len()];
    let mut queue = VecDeque::new();
    for (idx, source) in direct.iter().enumerate() {
        if source.is_some() {
            dist[idx] = Some(0);
            queue.push_back(idx);
        }
    }
    while let Some(v) = queue.pop_front() {
        let next_dist = dist[v].unwrap_or(0) + 1;
        for &(caller, line) in &reverse[v] {
            if dist[caller].is_none() {
                dist[caller] = Some(next_dist);
                via[caller] = Some((v, line));
                queue.push_back(caller);
            }
        }
    }
    Reach { direct, dist, via }
}

/// A flow finding: the baseline-keyed violation plus its diagnostic
/// witness lines (not part of the key).
#[derive(Debug, Clone)]
pub(crate) struct FlowFinding {
    pub(crate) violation: Violation,
    pub(crate) witness: Vec<String>,
}

/// Reports every `pub` entry point of a strict-scope crate that can
/// reach a panic, with its witness chain.
pub(crate) fn panic_reachability(models: &[FileModel], graph: &Graph) -> Vec<FlowFinding> {
    let reach = propagate(models, graph);
    let mut findings = Vec::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        let item = &f.item;
        if !item.is_pub || item.in_test || !crate::rules::in_strict_scope(&item.file) {
            continue;
        }
        if reach.dist[idx].is_none() {
            continue;
        }
        let witness = witness_chain(graph, &reach, idx);
        findings.push(FlowFinding {
            violation: Violation {
                rule: "panic-path",
                file: item.file.clone(),
                line: item.line,
                content: format!("pub fn {}", item.qual),
            },
            witness,
        });
    }
    findings.sort_by(|a, b| {
        (&a.violation.file, a.violation.line).cmp(&(&b.violation.file, b.violation.line))
    });
    findings
}

/// Renders the shortest entry→sink chain, one hop per line.
pub(crate) fn witness_chain(graph: &Graph, reach: &Reach, entry: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut cursor = entry;
    loop {
        let item = &graph.fns[cursor].item;
        match reach.via[cursor] {
            Some((next, line)) => {
                chain.push(format!("{} ({}:{}) calls", item.qual, item.file, line));
                cursor = next;
            }
            None => {
                let sink = reach.direct[cursor].as_ref();
                let (what, line) = sink
                    .map(|s| (s.what.clone(), s.line))
                    .unwrap_or_else(|| ("<unknown>".into(), item.line));
                chain.push(format!("{} ({}:{}) panics: {}", item.qual, item.file, line, what));
                return chain;
            }
        }
        // A cycle in `via` is impossible (BFS tree), but stay total.
        if chain.len() > graph.fns.len() {
            return chain;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::callgraph::build;
    use crate::analysis::items::parse_file;
    use crate::analysis::scan::{mask_source, test_line_mask};
    use crate::analysis::tokens::tokenize;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(file, src)| {
                let masked = mask_source(src);
                let test_lines = test_line_mask(&masked);
                parse_file(file, tokenize(&masked), &test_lines, crate::rules::test_path(file))
            })
            .collect()
    }

    fn source_of(src: &str) -> Option<String> {
        let m = models(&[("crates/core/src/x.rs", src)]);
        let body = m[0].fns[0].body.expect("has body");
        let hints = float_hint_lines(&m[0].tokens);
        direct_panic_source(&m[0].tokens, body, &hints).map(|s| s.what)
    }

    #[test]
    fn panic_macros_are_sources_but_debug_assert_is_not() {
        assert_eq!(source_of("fn f() { assert!(x); }").as_deref(), Some("assert!"));
        assert_eq!(source_of("fn f() { panic!(\"x\"); }").as_deref(), Some("panic!"));
        assert_eq!(source_of("fn f() { debug_assert!(x); }"), None);
        assert_eq!(source_of("fn f() { debug_assert_eq!(a, b); }"), None);
    }

    #[test]
    fn unwrap_and_expect_are_sources_unwrap_or_is_not() {
        assert_eq!(source_of("fn f() { x.unwrap(); }").as_deref(), Some(".unwrap()"));
        assert_eq!(source_of("fn f() { x.expect(\"m\"); }").as_deref(), Some(".expect(..)"));
        assert_eq!(source_of("fn f() { x.unwrap_or(0); }"), None);
        assert_eq!(source_of("fn f() { x.unwrap_or_else(|| 1); }"), None);
    }

    #[test]
    fn indexing_and_slicing_are_sources() {
        assert_eq!(source_of("fn f(v: &[u32], i: usize) { v[i]; }").as_deref(), Some("indexing"));
        assert_eq!(source_of("fn f(v: &[u32]) { let _ = &v[1..3]; }").as_deref(), Some("indexing"));
        assert_eq!(
            source_of("fn f() { x.copy_from_slice(y); }").as_deref(),
            Some(".copy_from_slice(..)")
        );
    }

    #[test]
    fn non_index_brackets_are_not_sources() {
        assert_eq!(source_of("fn f() { let a = [0u8; 4]; }"), None);
        assert_eq!(source_of("fn f(x: &[u8]) -> Vec<[u8; 2]> { vec![] }"), None);
        assert_eq!(source_of("fn f(a: (u8, u8)) { let [x, y] = [a.0, a.1]; }"), None);
        assert_eq!(source_of("fn f() { v.get(i); }"), None);
    }

    #[test]
    fn integer_division_by_non_literal_is_a_source() {
        assert!(source_of("fn f(a: u64, b: u64) -> u64 { a / b }").is_some_and(|w| w.contains('/')));
        assert!(source_of("fn f(a: u64, b: u64) -> u64 { a % b }").is_some_and(|w| w.contains('%')));
        assert!(
            source_of("fn f(a: &mut u64, b: u64) { *a /= b; }").is_some_and(|w| w.contains("/="))
        );
    }

    #[test]
    fn literal_and_float_division_are_not_sources() {
        assert_eq!(source_of("fn f(a: u64) -> u64 { a / 2 }"), None);
        assert_eq!(source_of("fn f(a: f64, b: f64) -> f64 { a / 1.5 }"), None);
        // Float evidence on the line suppresses the heuristic.
        assert_eq!(source_of("fn f(a: f64, b: f64) -> f64 { a / b }"), None);
        assert_eq!(
            source_of("fn f(a: u64, b: u64) -> f64 { count_to_f64(a) / count_to_f64(b) }"),
            None
        );
    }

    #[test]
    fn reachability_crosses_crates_with_witness() {
        let m = models(&[
            (
                "crates/core/src/lib.rs",
                "pub fn entry(x: u32) -> u32 { middle(x) }\nfn middle(x: u32) -> u32 { helper(x) }",
            ),
            ("crates/util/src/lib.rs", "pub fn helper(x: u32) -> u32 { SIZES[x as usize] }"),
        ]);
        let graph = build(&m);
        let findings = panic_reachability(&m, &graph);
        // Only core::entry is a strict-scope pub entry (util is out of
        // scope); it reaches the indexing in util::helper.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].violation.content, "pub fn core::entry");
        let witness = findings[0].witness.join("\n");
        assert!(witness.contains("core::entry"), "{witness}");
        assert!(witness.contains("core::middle"), "{witness}");
        assert!(witness.contains("panics: indexing"), "{witness}");
    }

    #[test]
    fn panic_free_entries_are_not_reported() {
        let m = models(&[(
            "crates/core/src/lib.rs",
            "pub fn clean(x: Option<u32>) -> u32 { x.unwrap_or(0) }",
        )]);
        let graph = build(&m);
        assert!(panic_reachability(&m, &graph).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let m = models(&[(
            "crates/core/src/lib.rs",
            "#[cfg(test)]\nmod tests { pub fn t() { x.unwrap(); } }",
        )]);
        let graph = build(&m);
        assert!(panic_reachability(&m, &graph).is_empty());
    }

    #[test]
    fn recursion_reaches_a_fixpoint() {
        let m = models(&[(
            "crates/core/src/lib.rs",
            "pub fn a(n: u32) { if n > 0 { b(n - 1) } }\nfn b(n: u32) { a(n); x.unwrap(); }",
        )]);
        let graph = build(&m);
        let findings = panic_reachability(&m, &graph);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].witness.last().is_some_and(|l| l.contains(".unwrap()")));
    }

    #[test]
    fn out_of_scope_pub_fns_are_not_entries() {
        let m = models(&[("crates/cli/src/lib.rs", "pub fn main_ish() { x.unwrap(); }")]);
        let graph = build(&m);
        assert!(panic_reachability(&m, &graph).is_empty());
    }
}
