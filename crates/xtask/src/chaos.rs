//! `cargo xtask chaos` — the seeded chaos harness (DESIGN.md §11).
//!
//! Runs the real estimation server **in-process** under deterministic
//! fault injection (`twig_util::failpoint`) and asserts the robustness
//! contract of the serve path:
//!
//! - **No process abort.** Every scenario ends with the accept thread
//!   joining cleanly; a panic that escaped containment would fail the
//!   join.
//! - **Bit-identical recovery.** Once faults clear, `/estimate` answers
//!   for *all six* algorithms are byte-for-byte identical to a
//!   fault-free baseline run (the JSON `f64` rendering is
//!   shortest-round-trip, so string equality is value equality).
//! - **Typed errors only.** A client sees either a well-formed response
//!   (200, or a 4xx/5xx carrying the `{"error":{kind,message}}`
//!   envelope) or a closed socket — never a torn half-response that
//!   parses, never a hang.
//! - **Monotonic metrics.** Every `_total` counter sampled from
//!   `/metrics` is non-decreasing across the run.
//!
//! Scenarios per seed: reload-during-batch (injected load failures
//! while clients hammer `/estimate`), kill-mid-write (a torn snapshot
//! persist followed by a simulated restart that must recover the
//! previous committed generation from the manifest), socket resets
//! (injected read/write faults on the HTTP layer), pool-worker
//! panic (injected dispatch panics that the reactor must contain),
//! flat-mmap-hosting (kill-mid-pack of a `TWIGFLT1` container, the
//! registry serving off the mapped file, and crash recovery from a
//! snapshot-store flat payload), and pipelined-reset-storm (read/write
//! faults firing on connections that pipeline all six algorithms while
//! `/admin/reload` runs concurrently — every delivered response slot
//! must be a baseline-identical 200 or a typed error, never a torn
//! frame), and syscall-storm-and-exhaustion (seeded errno faults on the
//! reactor's accept/read/write/epoll shims, a slowloris trickle fleet
//! that must die to progress-window kills while normal clients keep
//! getting baseline 200s, and a genuine `RLIMIT_NOFILE` exhaustion run
//! where accepts shed queued clients with typed `503`s via the reserve
//! fd — after every storm the server must answer bit-identically).
//!
//! The harness requires failpoints to be compiled in:
//!
//! ```text
//! cargo run -p xtask --features failpoints -- chaos --seeds 8
//! ```

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use twig_core::{Algorithm, Cst, CstConfig, SpaceBudget};
use twig_datagen::{generate_dblp, positive_queries, DblpConfig, WorkloadConfig};
use twig_serve::http::{
    read_response, read_response_pipelined, write_request, ClientResponse, Limits,
};
use twig_serve::{
    Json, LoadOutcome, Server, ServerConfig, SnapshotStore, SummaryRegistry, SummarySpec,
};
use twig_tree::DataTree;
use twig_util::failpoint;

const SUMMARY_NAME: &str = "chaos";

pub(crate) fn chaos(args: &[String]) -> ExitCode {
    let mut seeds = 4u64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seeds" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => seeds = n,
                _ => return usage_error("--seeds needs a positive integer"),
            },
            other => return usage_error(&format!("unknown chaos flag '{other}'")),
        }
    }
    if !failpoint::is_compiled() {
        eprintln!(
            "chaos: failpoints are not compiled into this build.\n\
             Rebuild with: cargo run -p xtask --features failpoints -- chaos --seeds {seeds}"
        );
        return ExitCode::FAILURE;
    }
    match run_chaos(seeds) {
        Ok(()) => {
            println!("chaos: all {seeds} seeds passed");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("chaos: FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\nusage: cargo xtask chaos [--seeds N]");
    ExitCode::FAILURE
}

/// True when `all_ok` in a reload response body is `true`.
fn reload_all_ok(body: &Json) -> bool {
    matches!(body.get("all_ok"), Some(Json::Bool(true)))
}

/// Silences the default panic hook's backtrace spew for *injected*
/// panics (recognized by their `PointPanic` payload); real panics still
/// print. Restored implicitly: the hook stays harmless after the run.
fn install_quiet_panic_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<failpoint::PointPanic>().is_some() {
            return;
        }
        default_hook(info);
    }));
}

fn run_chaos(seeds: u64) -> Result<(), String> {
    install_quiet_panic_hook();
    let world = World::build()?;
    let result = (1..=seeds).try_for_each(|seed| {
        println!("chaos: seed {seed}/{seeds}");
        run_seed(&world, seed).map_err(|e| format!("seed {seed}: {e}"))
    });
    failpoint::clear_all();
    std::fs::remove_dir_all(&world.dir).ok();
    result
}

fn run_seed(world: &World, seed: u64) -> Result<(), String> {
    failpoint::clear_all();
    let baseline = fault_free_baseline(world, seed)?;
    scenario_reload_during_batch(world, &baseline, seed)?;
    scenario_kill_mid_write(world, &baseline, seed)?;
    scenario_socket_resets(world, &baseline, seed)?;
    scenario_worker_panic(world, &baseline, seed)?;
    scenario_flat_mmap_hosting(world, &baseline, seed)?;
    scenario_pipelined_reset_storm(world, &baseline, seed)?;
    scenario_syscall_storm_and_exhaustion(world, &baseline, seed)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Fixture: corpus, summary file, workload
// ---------------------------------------------------------------------

struct World {
    dir: PathBuf,
    summary_path: PathBuf,
    /// Pristine serialized summary bytes (for repairing deliberate
    /// corruption between scenarios).
    summary_bytes: Vec<u8>,
    tree: DataTree,
}

impl World {
    fn build() -> Result<World, String> {
        let dir = std::env::temp_dir().join(format!("twig-chaos-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let xml = generate_dblp(&DblpConfig {
            target_bytes: 1 << 20,
            seed: 0xC4A0_5EED,
            ..DblpConfig::default()
        });
        let tree = DataTree::from_xml(&xml).map_err(|e| format!("corpus parse failed: {e}"))?;
        let cst = Cst::build(
            &tree,
            &CstConfig { budget: SpaceBudget::Threshold(2), ..CstConfig::default() },
        )
        .map_err(|e| format!("CST build failed: {e}"))?;
        let mut summary_bytes = Vec::new();
        cst.write_to(&mut summary_bytes).map_err(|e| format!("cannot serialize summary: {e}"))?;
        let summary_path = dir.join("chaos.cst");
        std::fs::write(&summary_path, &summary_bytes)
            .map_err(|e| format!("cannot write summary: {e}"))?;
        Ok(World { dir, summary_path, summary_bytes, tree })
    }

    /// Restores the pristine summary file (scenarios corrupt it).
    fn repair_summary(&self) -> Result<(), String> {
        std::fs::write(&self.summary_path, &self.summary_bytes)
            .map_err(|e| format!("cannot repair summary: {e}"))
    }

    /// Deterministic per-seed workload of positive twig queries.
    fn queries(&self, seed: u64) -> Vec<String> {
        positive_queries(
            &self.tree,
            &WorkloadConfig { count: 6, seed, ..WorkloadConfig::default() },
        )
        .iter()
        .map(|twig| twig.to_string())
        .collect()
    }
}

// ---------------------------------------------------------------------
// In-process server + HTTP client helpers
// ---------------------------------------------------------------------

struct Running {
    addr: String,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Running {
    /// POSTs `/admin/shutdown` and joins the accept thread; a panic that
    /// escaped containment (or a listener error) fails the join.
    fn stop(self) -> Result<(), String> {
        let _ = post(&self.addr, "/admin/shutdown", b"");
        match self.thread.join() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(err)) => Err(format!("server exited with error: {err}")),
            Err(_) => Err("server accept thread panicked (process-abort invariant)".into()),
        }
    }
}

/// The harness default: small enough to saturate, big enough to serve.
fn chaos_server_config() -> ServerConfig {
    ServerConfig {
        workers: 4,
        queue_capacity: 16,
        read_deadline: Duration::from_secs(5),
        idle_deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn boot(registry: SummaryRegistry) -> Result<Running, String> {
    boot_with(chaos_server_config(), registry)
}

fn boot_with(config: ServerConfig, registry: SummaryRegistry) -> Result<Running, String> {
    let server = Server::bind("127.0.0.1:0", config, registry)
        .map_err(|e| format!("cannot bind chaos server: {e}"))?;
    let addr = server.local_addr().to_string();
    let thread = std::thread::spawn(move || server.run());
    Ok(Running { addr, thread })
}

fn fresh_registry(world: &World, state_dir: Option<&Path>) -> Result<SummaryRegistry, String> {
    let registry = SummaryRegistry::new();
    if let Some(dir) = state_dir {
        let store =
            SnapshotStore::open(dir).map_err(|e| format!("cannot open snapshot store: {e}"))?;
        registry.attach_store(store);
    }
    registry
        .load(SummarySpec { name: SUMMARY_NAME.into(), path: world.summary_path.clone() })
        .map_err(|e| format!("cannot load chaos summary: {e}"))?;
    Ok(registry)
}

fn client_limits() -> Limits {
    Limits {
        max_head_bytes: 64 * 1024,
        max_body_bytes: 16 * 1024 * 1024,
        read_deadline: Duration::from_secs(10),
        idle_deadline: Duration::from_secs(10),
    }
}

/// One request on a fresh connection (so every request is one pool job).
fn post(addr: &str, target: &str, body: &[u8]) -> Result<ClientResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    write_request(&mut stream, "POST", target, body).map_err(|e| format!("write: {e}"))?;
    read_response(&mut stream, &client_limits()).map_err(|e| format!("read: {e}"))
}

fn get(addr: &str, target: &str) -> Result<ClientResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    write_request(&mut stream, "GET", target, b"").map_err(|e| format!("write: {e}"))?;
    read_response(&mut stream, &client_limits()).map_err(|e| format!("read: {e}"))
}

fn estimate_body(queries: &[String], algorithm: Algorithm) -> Vec<u8> {
    let items = queries.iter().map(|q| Json::str(q)).collect();
    Json::Obj(vec![
        ("summary".into(), Json::str(SUMMARY_NAME)),
        ("algorithm".into(), Json::str(algorithm.name())),
        ("queries".into(), Json::Arr(items)),
    ])
    .render()
    .into_bytes()
}

/// The `estimates` array of a 200 response, re-rendered: the canonical
/// bit-identity token for one (workload, algorithm) pair.
fn estimates_token(response: &ClientResponse) -> Result<String, String> {
    if response.status != 200 {
        return Err(format!("expected 200, got {}: {}", response.status, response.body_text()));
    }
    let body =
        Json::parse(&response.body_text()).map_err(|e| format!("unparseable 200 body: {e}"))?;
    let estimates =
        body.get("estimates").ok_or_else(|| "200 body lacks 'estimates'".to_string())?;
    Ok(estimates.render())
}

/// Asserts a non-200 response carries the typed error envelope.
fn assert_typed_error(response: &ClientResponse) -> Result<(), String> {
    if !(400..=599).contains(&response.status) {
        return Err(format!("error response with status {}", response.status));
    }
    let body = Json::parse(&response.body_text())
        .map_err(|e| format!("{} body is not JSON: {e}", response.status))?;
    let kind =
        body.get("error").and_then(|e| e.get("kind")).and_then(|k| k.as_str()).unwrap_or_default();
    if kind.is_empty() {
        return Err(format!("{} body lacks error.kind", response.status));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Metrics monotonicity
// ---------------------------------------------------------------------

/// Tracks every `_total` counter exposed by `/metrics` and fails if one
/// ever decreases.
#[derive(Default)]
struct MetricsWatch {
    last: BTreeMap<String, u64>,
}

impl MetricsWatch {
    fn sample(&mut self, addr: &str) -> Result<(), String> {
        let response = get(addr, "/metrics")?;
        if response.status != 200 {
            return Err(format!("/metrics returned {}", response.status));
        }
        for line in response.body_text().lines() {
            if line.starts_with('#') {
                continue;
            }
            let Some((name, value)) = line.split_once(' ') else {
                continue;
            };
            if !name.ends_with("_total") {
                continue; // gauges (e.g. twig_serve_degraded) may go down
            }
            let Ok(value) = value.trim().parse::<u64>() else {
                continue;
            };
            if let Some(&previous) = self.last.get(name) {
                if value < previous {
                    return Err(format!("counter {name} went backwards: {previous} -> {value}"));
                }
            }
            self.last.insert(name.to_string(), value);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------

/// Fault-free estimates for every algorithm, keyed by algorithm name.
type Baseline = BTreeMap<&'static str, String>;

fn fault_free_baseline(world: &World, seed: u64) -> Result<Baseline, String> {
    let queries = world.queries(seed);
    let running = boot(fresh_registry(world, None)?)?;
    let mut baseline = Baseline::new();
    for algorithm in Algorithm::ALL {
        let response = post(&running.addr, "/estimate", &estimate_body(&queries, algorithm))?;
        baseline.insert(algorithm.name(), estimates_token(&response)?);
    }
    running.stop()?;
    Ok(baseline)
}

/// Post-fault check: every algorithm's estimates must match the
/// fault-free baseline byte for byte.
fn assert_baseline_estimates(
    addr: &str,
    queries: &[String],
    baseline: &Baseline,
) -> Result<(), String> {
    for algorithm in Algorithm::ALL {
        let response = post(addr, "/estimate", &estimate_body(queries, algorithm))?;
        let token = estimates_token(&response)?;
        let expected = baseline
            .get(algorithm.name())
            .ok_or_else(|| format!("no baseline for {}", algorithm.name()))?;
        if &token != expected {
            return Err(format!(
                "{} estimates diverged after recovery:\n  baseline: {expected}\n  \
                 recovered: {token}",
                algorithm.name()
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Scenario 1: reload during batch traffic, with injected load failures
// ---------------------------------------------------------------------

fn scenario_reload_during_batch(
    world: &World,
    baseline: &Baseline,
    seed: u64,
) -> Result<(), String> {
    let label = "reload-during-batch";
    let queries = world.queries(seed);
    let state_dir = world.dir.join(format!("state-reload-{seed}"));
    std::fs::create_dir_all(&state_dir).map_err(|e| e.to_string())?;
    let running = boot(fresh_registry(world, Some(&state_dir))?)?;

    // The first reload read fails deterministically (so every seed
    // exercises the degraded path), then roughly a third fail at
    // random; serving must continue from the old generation and
    // estimates must never change.
    failpoint::configure("registry.load=1*error,33%error", seed)
        .map_err(|e| format!("{label}: {e}"))?;

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for client_index in 0..3u64 {
        let addr = running.addr.clone();
        let queries = queries.clone();
        let stop = std::sync::Arc::clone(&stop);
        let expected = baseline.get(Algorithm::Msh.name()).cloned().unwrap_or_default();
        clients.push(std::thread::spawn(move || -> Result<u64, String> {
            let mut served = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let body = estimate_body(&queries, Algorithm::Msh);
                let response = post(&addr, "/estimate", &body)
                    .map_err(|e| format!("client {client_index}: {e}"))?;
                let token = estimates_token(&response)
                    .map_err(|e| format!("client {client_index}: {e}"))?;
                if token != expected {
                    return Err(format!("client {client_index}: estimates changed mid-reload"));
                }
                served += 1;
            }
            Ok(served)
        }));
    }

    let mut watch = MetricsWatch::default();
    let mut reload_outcomes = (0u64, 0u64); // (ok, failed)
    for _ in 0..12 {
        let response = post(&running.addr, "/admin/reload", b"")?;
        if response.status != 200 {
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            return Err(format!("{label}: reload returned {}", response.status));
        }
        let body = Json::parse(&response.body_text()).map_err(|e| e.to_string())?;
        if reload_all_ok(&body) {
            reload_outcomes.0 += 1;
        } else {
            reload_outcomes.1 += 1;
        }
        watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for client in clients {
        match client.join() {
            Ok(Ok(served)) if served > 0 => {}
            Ok(Ok(_)) => return Err(format!("{label}: a client served zero requests")),
            Ok(Err(err)) => return Err(format!("{label}: {err}")),
            Err(_) => return Err(format!("{label}: client thread panicked")),
        }
    }
    if reload_outcomes.1 == 0 {
        return Err(format!(
            "{label}: injected failure never fired across {} reloads",
            reload_outcomes.0 + reload_outcomes.1
        ));
    }

    // Faults clear; the next reload must fully succeed and clear the
    // degraded state, and all six algorithms must match the baseline.
    failpoint::clear_all();
    let response = post(&running.addr, "/admin/reload", b"")?;
    let body = Json::parse(&response.body_text()).map_err(|e| e.to_string())?;
    if !reload_all_ok(&body) {
        return Err(format!("{label}: post-fault reload failed: {}", response.body_text()));
    }
    let health = get(&running.addr, "/healthz")?;
    let health_body = Json::parse(&health.body_text()).map_err(|e| e.to_string())?;
    if health_body.get("status").and_then(Json::as_str) != Some("ok") {
        return Err(format!(
            "{label}: health still degraded after recovery: {}",
            health.body_text()
        ));
    }
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;
    running.stop().map_err(|e| format!("{label}: {e}"))
}

// ---------------------------------------------------------------------
// Scenario 2: kill mid-snapshot-write, then recover from the manifest
// ---------------------------------------------------------------------

fn scenario_kill_mid_write(world: &World, baseline: &Baseline, seed: u64) -> Result<(), String> {
    let label = "kill-mid-write";
    let queries = world.queries(seed);
    let state_dir = world.dir.join(format!("state-kill-{seed}"));
    std::fs::create_dir_all(&state_dir).map_err(|e| e.to_string())?;

    // Generation 1 persists cleanly.
    let registry = fresh_registry(world, Some(&state_dir))?;
    let store = registry.snapshot_store().ok_or_else(|| format!("{label}: no store attached"))?;
    if store.committed_generation(SUMMARY_NAME) != Some(1) {
        return Err(format!("{label}: generation 1 was not committed"));
    }

    // "Kill" the process mid-write: the generation-2 persist tears the
    // snapshot file (a partial write at the final path), so the
    // manifest must keep pointing at generation 1.
    failpoint::configure("snapshot.write=partial(43)", seed).map_err(|e| e.to_string())?;
    for (_, result) in registry.reload_all() {
        result.map_err(|e| format!("{label}: reload itself failed: {e}"))?;
    }
    failpoint::clear_all();
    if registry.snapshot_failure_count() == 0 {
        return Err(format!("{label}: torn persist was not detected"));
    }
    if registry.snapshot_store().and_then(|s| s.committed_generation(SUMMARY_NAME)) != Some(1) {
        return Err(format!("{label}: manifest moved past the torn generation"));
    }
    drop(registry); // the "crash"

    // Restart with the source summary file also corrupted: recovery
    // must land on committed generation 1 and quarantine the torn file.
    std::fs::write(&world.summary_path, b"definitely not a summary").map_err(|e| e.to_string())?;
    let restarted = SummaryRegistry::new();
    let store = SnapshotStore::open(&state_dir).map_err(|e| format!("{label}: {e}"))?;
    restarted.attach_store(store);
    let outcome = restarted
        .load_or_recover(SummarySpec {
            name: SUMMARY_NAME.into(),
            path: world.summary_path.clone(),
        })
        .map_err(|e| format!("{label}: recovery failed: {e}"))?;
    match outcome {
        LoadOutcome::Recovered { generation: 1, .. } => {}
        other => {
            world.repair_summary()?;
            return Err(format!("{label}: expected recovery to generation 1, got {other:?}"));
        }
    }
    if restarted.degraded() != 1 {
        world.repair_summary()?;
        return Err(format!("{label}: recovered entry is not marked degraded"));
    }

    // The recovered summary must serve baseline-identical estimates,
    // with the stale-generation header advertised.
    let running = boot(restarted)?;
    let response = post(&running.addr, "/estimate", &estimate_body(&queries, Algorithm::Msh))?;
    if response.header("x-twig-stale-generation").is_none() {
        world.repair_summary()?;
        return Err(format!("{label}: stale response lacks X-Twig-Stale-Generation"));
    }
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;

    // Repair the source file: the next reload heals the degraded state.
    world.repair_summary()?;
    let response = post(&running.addr, "/admin/reload", b"")?;
    let body = Json::parse(&response.body_text()).map_err(|e| e.to_string())?;
    if !reload_all_ok(&body) {
        return Err(format!("{label}: healing reload failed: {}", response.body_text()));
    }
    let response = post(&running.addr, "/estimate", &estimate_body(&queries, Algorithm::Msh))?;
    if response.header("x-twig-stale-generation").is_some() {
        return Err(format!("{label}: stale header survived a successful reload"));
    }
    running.stop().map_err(|e| format!("{label}: {e}"))
}

// ---------------------------------------------------------------------
// Scenario 3: socket faults (torn reads, failed/torn writes)
// ---------------------------------------------------------------------

fn scenario_socket_resets(world: &World, baseline: &Baseline, seed: u64) -> Result<(), String> {
    let label = "socket-resets";
    let queries = world.queries(seed);
    let running = boot(fresh_registry(world, None)?)?;

    failpoint::configure(
        "http.read=20%error,15%partial(50);http.write=20%partial(60),10%error",
        seed,
    )
    .map_err(|e| e.to_string())?;

    let mut ok = 0u64;
    let mut typed_errors = 0u64;
    let mut transport_errors = 0u64;
    let expected = baseline.get(Algorithm::Msh.name()).cloned().unwrap_or_default();
    for _ in 0..40 {
        match post(&running.addr, "/estimate", &estimate_body(&queries, Algorithm::Msh)) {
            Ok(response) if response.status == 200 => {
                let token = estimates_token(&response).map_err(|e| format!("{label}: {e}"))?;
                if token != expected {
                    return Err(format!("{label}: estimates changed under socket faults"));
                }
                ok += 1;
            }
            Ok(response) => {
                assert_typed_error(&response).map_err(|e| format!("{label}: {e}"))?;
                typed_errors += 1;
            }
            // A closed/reset socket is an acceptable outcome for the
            // client; the server must survive it.
            Err(_) => transport_errors += 1,
        }
    }
    if typed_errors + transport_errors == 0 {
        return Err(format!("{label}: injected socket faults never fired"));
    }

    // Faults clear: the server must be fully healthy and bit-identical.
    failpoint::clear_all();
    let health = get(&running.addr, "/healthz")?;
    if health.status != 200 {
        return Err(format!("{label}: /healthz returned {} after faults", health.status));
    }
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;
    if ok == 0 {
        // Not an invariant violation by itself, but a seed whose faults
        // starved every request would make the scenario vacuous.
        return Err(format!("{label}: no request survived the fault window"));
    }
    running.stop().map_err(|e| format!("{label}: {e}"))
}

// ---------------------------------------------------------------------
// Scenario 4: worker panics in the pool
// ---------------------------------------------------------------------

fn scenario_worker_panic(world: &World, baseline: &Baseline, seed: u64) -> Result<(), String> {
    let label = "pool-worker-panic";
    let queries = world.queries(seed);
    let running = boot(fresh_registry(world, None)?)?;
    let mut watch = MetricsWatch::default();
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;

    // Exactly three dispatches panic, then the point turns off.
    failpoint::configure("pool.dispatch=3*panic,off", seed).map_err(|e| e.to_string())?;
    let mut dropped = 0u64;
    for _ in 0..10 {
        match post(&running.addr, "/estimate", &estimate_body(&queries, Algorithm::Msh)) {
            Ok(response) if response.status == 200 => {}
            Ok(response) => {
                assert_typed_error(&response).map_err(|e| format!("{label}: {e}"))?;
            }
            Err(_) => dropped += 1, // connection died with the worker's job
        }
    }
    failpoint::clear_all();
    if dropped != 3 {
        return Err(format!("{label}: expected 3 dropped connections, saw {dropped}"));
    }

    // The pool contained every panic: workers still serve, the counter
    // is live (not shutdown-reconciled), and metrics stay monotonic.
    let metrics = get(&running.addr, "/metrics")?;
    let panics_line = metrics
        .body_text()
        .lines()
        .find(|line| line.starts_with("twig_serve_worker_panics_total"))
        .map(str::to_owned)
        .unwrap_or_default();
    if panics_line.trim() != "twig_serve_worker_panics_total 3" {
        return Err(format!("{label}: expected live panic counter of 3, got '{panics_line}'"));
    }
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;
    running.stop().map_err(|e| format!("{label}: {e}"))
}

// ---------------------------------------------------------------------
// Scenario 5: flat container hosting — kill mid-pack, serve off the
// mapping, recover from a snapshot-store flat payload after a crash
// ---------------------------------------------------------------------

fn scenario_flat_mmap_hosting(world: &World, baseline: &Baseline, seed: u64) -> Result<(), String> {
    let label = "flat-mmap-hosting";
    let queries = world.queries(seed);
    let state_dir = world.dir.join(format!("state-flat-{seed}"));
    std::fs::create_dir_all(&state_dir).map_err(|e| e.to_string())?;
    let flat_path = world.dir.join(format!("chaos-{seed}.flt"));
    let cst = Cst::read_from(&mut world.summary_bytes.as_slice())
        .map_err(|e| format!("{label}: cannot deserialize summary: {e}"))?;

    // Kill mid-pack: the partial write dies before the rename, so a
    // torn container can never land at the final path; the retry lands.
    failpoint::configure("flat.pack=1*partial(41),off", seed).map_err(|e| e.to_string())?;
    if twig_flat::writer::write_file(&cst, &flat_path).is_ok() {
        return Err(format!("{label}: injected pack fault did not fire"));
    }
    failpoint::clear_all();
    if flat_path.exists() {
        return Err(format!("{label}: torn pack landed at the final path"));
    }
    twig_flat::writer::write_file(&cst, &flat_path)
        .map_err(|e| format!("{label}: clean re-pack failed: {e}"))?;

    // The registry maps the container zero-copy and serves estimates
    // bit-identical to the owned baseline.
    let registry = SummaryRegistry::new();
    let store = SnapshotStore::open(&state_dir).map_err(|e| format!("{label}: {e}"))?;
    registry.attach_store(store);
    registry
        .load(SummarySpec { name: SUMMARY_NAME.into(), path: flat_path.clone() })
        .map_err(|e| format!("{label}: cannot load flat summary: {e}"))?;
    let running = boot(registry)?;
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;

    // An injected reload failure degrades the entry but keeps the old
    // mapping serving; the next clean reload heals it (map-swap).
    failpoint::configure("registry.load=1*error,off", seed).map_err(|e| e.to_string())?;
    let response = post(&running.addr, "/admin/reload", b"")?;
    let body = Json::parse(&response.body_text()).map_err(|e| e.to_string())?;
    if reload_all_ok(&body) {
        return Err(format!("{label}: injected reload fault did not fire"));
    }
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: degraded mapping diverged: {e}"))?;
    failpoint::clear_all();
    let response = post(&running.addr, "/admin/reload", b"")?;
    let body = Json::parse(&response.body_text()).map_err(|e| e.to_string())?;
    if !reload_all_ok(&body) {
        return Err(format!("{label}: healing reload failed: {}", response.body_text()));
    }
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;
    running.stop().map_err(|e| format!("{label}: {e}"))?;

    // Simulated crash: the flat source is replaced with garbage — by
    // rename, honouring the mmap contract (a live mapping must never
    // see an in-place truncation). Recovery must come back from the
    // snapshot store's raw flat payload, marked stale, bit-identical.
    let garbage = world.dir.join(format!("garbage-{seed}.tmp"));
    std::fs::write(&garbage, b"definitely not a container").map_err(|e| e.to_string())?;
    std::fs::rename(&garbage, &flat_path).map_err(|e| e.to_string())?;
    let restarted = SummaryRegistry::new();
    let store = SnapshotStore::open(&state_dir).map_err(|e| format!("{label}: {e}"))?;
    restarted.attach_store(store);
    let outcome = restarted
        .load_or_recover(SummarySpec { name: SUMMARY_NAME.into(), path: flat_path })
        .map_err(|e| format!("{label}: recovery failed: {e}"))?;
    match outcome {
        LoadOutcome::Recovered { .. } => {}
        other => return Err(format!("{label}: expected snapshot recovery, got {other:?}")),
    }
    let running = boot(restarted)?;
    let response = post(&running.addr, "/estimate", &estimate_body(&queries, Algorithm::Msh))?;
    if response.header("x-twig-stale-generation").is_none() {
        return Err(format!("{label}: recovered flat summary lacks the stale header"));
    }
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;
    running.stop().map_err(|e| format!("{label}: {e}"))
}

// ---------------------------------------------------------------------
// Scenario 6: socket-reset storm over pipelined batches, with reloads
// racing the traffic — the reactor's framing invariant under faults
// ---------------------------------------------------------------------

/// Sends one pipelined batch — all six algorithms back to back on a
/// single connection — and reads the responses in order. Each delivered
/// slot is `Some(token)` for a 200 or `None` for a typed error
/// envelope; the batch truncates at the first transport error (the
/// connection was reset, so later slots are legitimately undelivered).
/// An `Err` means a framing invariant broke: a 200 whose body does not
/// parse, or an error response without the typed envelope.
fn pipelined_batch(
    addr: &str,
    queries: &[String],
) -> Result<Vec<(Algorithm, Option<String>)>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut sent = Vec::new();
    for algorithm in Algorithm::ALL {
        // A write error means the server reset mid-batch; the slots
        // already written may still answer, so keep reading below.
        if write_request(&mut stream, "POST", "/estimate", &estimate_body(queries, algorithm))
            .is_err()
        {
            break;
        }
        sent.push(algorithm);
    }
    let limits = client_limits();
    let mut inbound = Vec::new();
    let mut slots = Vec::new();
    for algorithm in sent {
        match read_response_pipelined(&mut stream, &mut inbound, &limits) {
            Ok(response) if response.status == 200 => {
                let token = estimates_token(&response)?;
                slots.push((algorithm, Some(token)));
            }
            Ok(response) => {
                assert_typed_error(&response)?;
                slots.push((algorithm, None));
                // Error responses close the connection; the next read
                // simply reports a transport error and ends the batch.
            }
            Err(_) => break,
        }
    }
    Ok(slots)
}

fn scenario_pipelined_reset_storm(
    world: &World,
    baseline: &Baseline,
    seed: u64,
) -> Result<(), String> {
    let label = "pipelined-reset-storm";
    let queries = world.queries(seed);
    let running = boot(fresh_registry(world, None)?)?;
    let mut watch = MetricsWatch::default();
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;

    failpoint::configure(
        "http.read=12%error,10%partial(50);http.write=12%partial(60),8%error",
        seed,
    )
    .map_err(|e| e.to_string())?;

    // Reloads race the pipelined traffic on their own connections; the
    // registry itself is not faulted, so any reload that survives the
    // socket faults must report `all_ok` (map-swap under load).
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reload_ok = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let reloader = {
        let addr = running.addr.clone();
        let stop = std::sync::Arc::clone(&stop);
        let reload_ok = std::sync::Arc::clone(&reload_ok);
        std::thread::spawn(move || -> Result<u64, String> {
            let mut attempts = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                attempts += 1;
                if let Ok(response) = post(&addr, "/admin/reload", b"") {
                    if response.status != 200 {
                        // Socket faults can turn the reload request into
                        // a typed error (e.g. an injected torn read);
                        // anything else is a broken envelope.
                        assert_typed_error(&response)?;
                    } else {
                        match Json::parse(&response.body_text()) {
                            Ok(body) if reload_all_ok(&body) => {
                                reload_ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            // A torn body would fail read_response
                            // (framing guards it); a parsed body must
                            // say all_ok — the registry is not faulted.
                            Ok(_) => return Err("fault-free reload reported failure".into()),
                            Err(e) => return Err(format!("reload body unparseable: {e}")),
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(attempts)
        })
    };

    // Storm until every probe has evidence: at least one baseline-exact
    // 200, at least one fault outcome (typed error or reset batch), and
    // at least one reload that went through cleanly.
    let mut delivered_ok = 0u64;
    let mut typed_errors = 0u64;
    let mut reset_slots = 0u64;
    let mut rounds = 0u64;
    let outcome = loop {
        rounds += 1;
        let slots = match pipelined_batch(&running.addr, &queries) {
            Ok(slots) => slots,
            Err(e) => break Err(format!("{label}: round {rounds}: {e}")),
        };
        reset_slots += (Algorithm::ALL.len() - slots.len()) as u64;
        let mut bad = None;
        for (algorithm, slot) in &slots {
            match slot {
                Some(token) => {
                    let expected = baseline.get(algorithm.name());
                    if Some(token) != expected {
                        bad = Some(format!(
                            "{label}: {} estimates diverged in a pipelined batch",
                            algorithm.name()
                        ));
                        break;
                    }
                    delivered_ok += 1;
                }
                None => typed_errors += 1,
            }
        }
        if let Some(message) = bad {
            break Err(message);
        }
        let reloads = reload_ok.load(std::sync::atomic::Ordering::Relaxed);
        if rounds >= 12 && delivered_ok > 0 && typed_errors + reset_slots > 0 && reloads > 0 {
            break Ok(());
        }
        if rounds >= 400 {
            break Err(format!(
                "{label}: storm never converged after {rounds} rounds \
                 (ok {delivered_ok}, typed {typed_errors}, reset {reset_slots}, \
                 clean reloads {reloads})"
            ));
        }
    };
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let reload_result = reloader.join();
    outcome?;
    match reload_result {
        Ok(Ok(attempts)) if attempts > 0 => {}
        Ok(Ok(_)) => return Err(format!("{label}: reloader made zero attempts")),
        Ok(Err(err)) => return Err(format!("{label}: reloader: {err}")),
        Err(_) => return Err(format!("{label}: reloader thread panicked")),
    }

    // Faults clear: one pipelined batch must deliver all six slots as
    // baseline-identical 200s, and the sequential path must agree.
    failpoint::clear_all();
    let slots = pipelined_batch(&running.addr, &queries).map_err(|e| format!("{label}: {e}"))?;
    if slots.len() != Algorithm::ALL.len() {
        return Err(format!(
            "{label}: clean pipelined batch delivered {} of {} slots",
            slots.len(),
            Algorithm::ALL.len()
        ));
    }
    for (algorithm, slot) in &slots {
        let expected = baseline.get(algorithm.name());
        if slot.as_ref() != expected {
            return Err(format!(
                "{label}: {} diverged in the clean pipelined batch",
                algorithm.name()
            ));
        }
    }
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;
    running.stop().map_err(|e| format!("{label}: {e}"))
}

// ---------------------------------------------------------------------
// Scenario 7: syscall fault storm, slowloris fleet, fd exhaustion —
// the reactor's resource-exhaustion defenses (DESIGN.md §16)
// ---------------------------------------------------------------------

/// All samples of metric `name` (labeled or not) from `/metrics`.
#[cfg(target_os = "linux")]
fn metric_samples(addr: &str, name: &str) -> Result<Vec<u64>, String> {
    let response = get(addr, "/metrics")?;
    if response.status != 200 {
        return Err(format!("/metrics returned {}", response.status));
    }
    let mut samples = Vec::new();
    for line in response.body_text().lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((metric, value)) = line.split_once(' ') else {
            continue;
        };
        let matches = metric == name
            || (metric.starts_with(name) && metric.as_bytes().get(name.len()) == Some(&b'{'));
        if !matches {
            continue;
        }
        if let Ok(value) = value.trim().parse::<u64>() {
            samples.push(value);
        }
    }
    Ok(samples)
}

/// Asserts `/healthz` answers 200 with `status: "ok"` (no degraded
/// summaries, no stalled reactor heartbeats).
#[cfg(target_os = "linux")]
fn assert_healthy(label: &str, addr: &str) -> Result<(), String> {
    let health = get(addr, "/healthz")?;
    if health.status != 200 {
        return Err(format!("{label}: /healthz returned {} after recovery", health.status));
    }
    let body = Json::parse(&health.body_text()).map_err(|e| e.to_string())?;
    if body.get("status").and_then(Json::as_str) != Some("ok") {
        return Err(format!("{label}: health not ok after recovery: {}", health.body_text()));
    }
    Ok(())
}

#[cfg(target_os = "linux")]
fn scenario_syscall_storm_and_exhaustion(
    world: &World,
    baseline: &Baseline,
    seed: u64,
) -> Result<(), String> {
    phase_errno_storm(world, baseline, seed)?;
    phase_slowloris_fleet(world, baseline, seed)?;
    phase_fd_exhaustion(world, baseline, seed)
}

/// The reactor's syscall shims only exist on Linux (the blocking
/// fallback has no accept taxonomy or progress windows to storm).
#[cfg(not(target_os = "linux"))]
fn scenario_syscall_storm_and_exhaustion(
    _world: &World,
    _baseline: &Baseline,
    _seed: u64,
) -> Result<(), String> {
    Ok(())
}

/// Phase 7a: seeded errno faults on every reactor syscall shim at once.
/// `sys.epoll_wait` may only see `errno(EINTR)` and spurious wakeups —
/// any other poller errno is *designed* to be fatal (global drain), so
/// injecting one would assert the wrong contract.
#[cfg(target_os = "linux")]
fn phase_errno_storm(world: &World, baseline: &Baseline, seed: u64) -> Result<(), String> {
    let label = "syscall-errno-storm";
    let queries = world.queries(seed);
    let running = boot(fresh_registry(world, None)?)?;
    let mut watch = MetricsWatch::default();
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;

    failpoint::configure(
        "sys.accept=8%errno(EINTR),4%errno(EMFILE),2%errno(ENOMEM),4%errno(ECONNABORTED);\
         sys.read=10%errno(EINTR),10%partial(35);\
         sys.write=10%errno(EINTR),10%partial(40);\
         sys.epoll_ctl=4%errno(EINTR);\
         sys.epoll_wait=10%errno(EINTR),5%partial(0)",
        seed,
    )
    .map_err(|e| format!("{label}: {e}"))?;

    let expected = baseline.get(Algorithm::Msh.name()).cloned().unwrap_or_default();
    let mut ok = 0u64;
    let mut typed_errors = 0u64;
    let mut transport_errors = 0u64;
    for _ in 0..60 {
        match post(&running.addr, "/estimate", &estimate_body(&queries, Algorithm::Msh)) {
            Ok(response) if response.status == 200 => {
                let token = estimates_token(&response).map_err(|e| format!("{label}: {e}"))?;
                if token != expected {
                    return Err(format!("{label}: estimates changed under syscall faults"));
                }
                ok += 1;
            }
            Ok(response) => {
                assert_typed_error(&response).map_err(|e| format!("{label}: {e}"))?;
                typed_errors += 1;
            }
            // An admit dropped by an injected epoll_ctl fault, a reset
            // injected mid-read, or an EMFILE-shed close: the client may
            // legitimately see a dead socket. The server must not.
            Err(_) => transport_errors += 1,
        }
    }
    failpoint::clear_all();
    if ok == 0 {
        return Err(format!("{label}: no request survived the fault storm"));
    }
    if typed_errors + transport_errors == 0 {
        return Err(format!("{label}: injected syscall faults never fired"));
    }

    // The accept-path errno taxonomy must have observed the storm …
    let accept_errors: u64 =
        metric_samples(&running.addr, "twig_serve_accept_errors_total")?.iter().sum();
    if accept_errors == 0 {
        return Err(format!("{label}: accept errno taxonomy never counted a fault"));
    }
    // … and slab occupancy stays bounded by the per-shard admission cap.
    let config = chaos_server_config();
    let cap = (config.workers + config.queue_capacity) as u64;
    let max_open = metric_samples(&running.addr, "twig_serve_reactor_connections")?
        .into_iter()
        .max()
        .unwrap_or(0);
    if max_open > cap {
        return Err(format!("{label}: reactor slab exceeded its cap: {max_open} > {cap}"));
    }

    // Faults clear: healthy heartbeats, bit-identical answers.
    assert_healthy(label, &running.addr)?;
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;
    running.stop().map_err(|e| format!("{label}: {e}"))
}

/// Phase 7b: a fleet of trickle clients (loadgen's slow-client mode)
/// dribbles request bytes below the minimum-progress floor; every one
/// must die to a progress-window kill while a normal client keeps
/// getting baseline-identical 200s.
#[cfg(target_os = "linux")]
fn phase_slowloris_fleet(world: &World, baseline: &Baseline, seed: u64) -> Result<(), String> {
    use twig_serve::LoadgenConfig;

    let label = "slowloris-fleet";
    let queries = world.queries(seed);
    let config = ServerConfig {
        // Tight windows so the fleet dies within the phase budget: a
        // busy connection must move 2 KiB per 300 ms; trickle clients
        // manage ~120 bytes.
        progress_window: Duration::from_millis(300),
        min_progress_bytes: 2048,
        ..chaos_server_config()
    };
    let running = boot_with(config, fresh_registry(world, None)?)?;
    let mut watch = MetricsWatch::default();
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;

    let fleet = {
        let addr = running.addr.clone();
        std::thread::spawn(move || {
            let config = LoadgenConfig {
                addr,
                connections: 4,
                duration: Duration::from_secs(2),
                trickle: 400, // bytes/sec — far below 2048 per 300 ms
                summary: SUMMARY_NAME.into(),
                seed,
                ..LoadgenConfig::default()
            };
            twig_serve::loadgen::run(&config)
        })
    };

    // While the fleet trickles, a well-behaved client sees no slowdown
    // and no divergence.
    std::thread::sleep(Duration::from_millis(200));
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: normal client during fleet: {e}"))?;

    let report = match fleet.join() {
        Ok(Ok(report)) => report,
        Ok(Err(err)) => return Err(format!("{label}: trickle loadgen failed: {err}")),
        Err(_) => return Err(format!("{label}: trickle loadgen panicked")),
    };
    // Every kill severs a trickle connection mid-write; the client sees
    // it as an error on its next chunk.
    if report.errors == 0 {
        return Err(format!("{label}: no trickle client was ever severed"));
    }
    let kills: u64 = metric_samples(&running.addr, "twig_serve_progress_kills_total")?.iter().sum();
    if kills == 0 {
        return Err(format!("{label}: progress watchdog never killed a trickle client"));
    }

    assert_healthy(label, &running.addr)?;
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;
    running.stop().map_err(|e| format!("{label}: {e}"))
}

/// Phase 7c: genuine fd exhaustion — `RLIMIT_NOFILE` is lowered to just
/// above current usage and the headroom hogged, so the kernel hands the
/// reactor real `EMFILE`. Queued clients must be shed with a typed
/// `503` through the reserve fd (or see a clean close), never hang; the
/// restored server must answer bit-identically.
#[cfg(target_os = "linux")]
fn phase_fd_exhaustion(world: &World, baseline: &Baseline, seed: u64) -> Result<(), String> {
    use twig_serve::rlimit::{nofile_limit, set_nofile_limit, Rlimit};

    /// Restores the saved limit even on an early error return.
    struct RestoreLimit(Rlimit);
    impl Drop for RestoreLimit {
        fn drop(&mut self) {
            let _ = set_nofile_limit(self.0);
        }
    }

    let label = "fd-exhaustion";
    let queries = world.queries(seed);
    let running = boot(fresh_registry(world, None)?)?;
    let mut watch = MetricsWatch::default();
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;

    let saved = nofile_limit().map_err(|e| format!("{label}: getrlimit: {e}"))?;
    let _restore = RestoreLimit(saved);
    let used = u64::try_from(
        std::fs::read_dir("/proc/self/fd")
            .map_err(|e| format!("{label}: cannot count open fds: {e}"))?
            .count(),
    )
    .unwrap_or(u64::MAX);
    let lowered = Rlimit { cur: (used + 8).min(saved.max), max: saved.max };
    set_nofile_limit(lowered).map_err(|e| format!("{label}: setrlimit: {e}"))?;

    // Each round re-hogs the headroom (connections closed since the
    // previous round return their fds) and then frees exactly one fd —
    // enough for the client's socket, none for the server's accept,
    // which must hit EMFILE and shed the queued connection through its
    // reserve fd.
    let mut hogs = Vec::new();
    let mut shed_503 = 0u64;
    let mut severed = 0u64;
    for round in 0..8 {
        if round > 0 {
            // Let the reactor observe the previous round's client
            // hangup and release the server-side fd before re-hogging.
            std::thread::sleep(Duration::from_millis(30));
        }
        while let Ok(hog) = std::fs::File::open("/dev/null") {
            hogs.push(hog);
            if hogs.len() > 4096 {
                return Err(format!("{label}: lowered RLIMIT_NOFILE did not take effect"));
            }
        }
        if hogs.pop().is_none() {
            return Err(format!("{label}: no headroom left for a client socket"));
        }
        match post(&running.addr, "/estimate", &estimate_body(&queries, Algorithm::Msh)) {
            Ok(response) if response.status == 503 => {
                assert_typed_error(&response).map_err(|e| format!("{label}: {e}"))?;
                shed_503 += 1;
            }
            // Freed fds can accumulate across rounds (each shed client
            // closes its socket), so a later accept may legitimately
            // succeed and serve the request.
            Ok(response) if response.status == 200 => {}
            Ok(response) => {
                assert_typed_error(&response).map_err(|e| format!("{label}: {e}"))?;
            }
            Err(_) => severed += 1,
        }
    }
    drop(hogs);
    set_nofile_limit(saved).map_err(|e| format!("{label}: restore setrlimit: {e}"))?;
    if shed_503 + severed == 0 {
        return Err(format!("{label}: exhaustion never produced a shed or severed client"));
    }

    // The kernel's EMFILE must have been counted by the accept taxonomy
    // (queried only now: under exhaustion /metrics itself has no fd).
    let fd_errors: u64 =
        metric_samples(&running.addr, "twig_serve_accept_errors_total")?.iter().sum();
    if fd_errors == 0 {
        return Err(format!("{label}: accept taxonomy never observed fd exhaustion"));
    }

    // Accepts resume within one backoff interval; recovery is exact.
    assert_healthy(label, &running.addr)?;
    assert_baseline_estimates(&running.addr, &queries, baseline)
        .map_err(|e| format!("{label}: {e}"))?;
    watch.sample(&running.addr).map_err(|e| format!("{label}: {e}"))?;
    running.stop().map_err(|e| format!("{label}: {e}"))
}
