//! Allocation-discipline over the hot path.
//!
//! The static counterpart to the estimation fast path: every
//! heap-allocating call (`Vec::new`, `vec!`, `.to_vec()`, `.clone()`,
//! `format!`, `String::from`, boxing, `.collect()`, …) *reachable* from
//! a hot-path entry point is a finding. Entries are the per-request
//! core the bench harness times: `Cst::estimate_raw`, every function in
//! the sethash kernels file, the CSR trie walk family, and the serve
//! request loop. The burn-down baseline is what keeps the future epoll
//! loop and bytecode VM allocation-free per request — a new allocation
//! sneaking onto the hot path fails CI instead of a benchmark review.
//!
//! Reachability is a forward BFS over the same conservative call graph
//! flow uses, with one refinement: method call sites that resolve to
//! more than three same-named workspace methods (`.get(`, `.write(`,
//! `.len(` …) are treated as unresolvable std-ish calls and not
//! followed — over-resolution there would wire half the workspace into
//! the "hot path" through name collisions alone. Direct allocation
//! *detection* is token-level per function, so a `.clone()` in a
//! genuinely-reached function is still caught even when edges through
//! generic names are skipped.
//!
//! Finding content is the line-free `fn <qual> allocates: <what>` so
//! unrelated edits never churn the baseline; the line number still
//! points at the first such call for the human report.

use std::collections::VecDeque;

use crate::analysis::callgraph::{self, call_sites};
use crate::analysis::tokens::{Token, TokenKind};
use crate::reach::FlowFinding;
use crate::rules::Violation;
use crate::taint::Ctx;

/// Hot-path entry points, `::`-aligned qualified-path suffixes.
const HOT_ENTRY_SUFFIXES: &[&str] = &[
    "Cst::estimate_raw",
    "PrunedTrie::walk",
    "PrunedTrie::child",
    "PrunedTrie::find",
    "handle_connection",
];

/// Files whose every non-test function is a hot entry (the kernels).
const HOT_ENTRY_FILES: &[&str] = &["crates/sethash/src/kernels.rs"];

/// Allocating constructors: `Type::name(` path calls.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "String", "Box", "Rc", "Arc", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "VecDeque",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Allocating methods: `.name(` calls.
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "collect",
    "join",
    "concat",
    "repeat",
    "reserve",
    "reserve_exact",
    "into_boxed_slice",
];

/// Method call sites resolving to more than this many candidates are
/// treated as std calls and not traversed.
const AMBIGUOUS_METHOD_LIMIT: usize = 3;

fn qual_suffix(qual: &str, suffix: &str) -> bool {
    qual == suffix || (qual.ends_with(suffix) && qual[..qual.len() - suffix.len()].ends_with("::"))
}

/// Token-level allocation sites in a body range, one per distinct
/// `what` (first line wins — the content key is line-free, so one
/// finding per kind keeps the baseline small and stable).
fn alloc_sites(tokens: &[Token], range: (usize, usize)) -> Vec<(String, usize)> {
    let (start, end) = range;
    let end = end.min(tokens.len());
    let mut sites: Vec<(String, usize)> = Vec::new();
    let push = |what: String, line: usize, sites: &mut Vec<(String, usize)>| {
        if !sites.iter().any(|(w, _)| *w == what) {
            sites.push((what, line));
        }
    };
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Ident, "vec" | "format")
                if tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                push(format!("{}!", t.text), t.line, &mut sites);
                i += 2;
            }
            (TokenKind::Ident, ty) if ALLOC_TYPES.contains(&ty) => {
                // `Vec::new(`, `Vec::<u8>::with_capacity(` …
                let mut j = i + 1;
                let mut ctor = None;
                while tokens.get(j).is_some_and(|n| n.is_punct("::")) {
                    match tokens.get(j + 1) {
                        Some(n) if n.is_punct("<") => {
                            // Turbofish: skip to the matching `>`.
                            let mut depth = 0i32;
                            let mut k = j + 1;
                            while k < end {
                                match tokens[k].text.as_str() {
                                    "<" if tokens[k].kind == TokenKind::Punct => depth += 1,
                                    ">" if tokens[k].kind == TokenKind::Punct => {
                                        depth -= 1;
                                        if depth <= 0 {
                                            break;
                                        }
                                    }
                                    ">>" if tokens[k].kind == TokenKind::Punct => depth -= 2,
                                    _ => {}
                                }
                                k += 1;
                            }
                            j = k + 1;
                        }
                        Some(n) if n.kind == TokenKind::Ident => {
                            ctor = Some(n.text.clone());
                            j += 2;
                        }
                        _ => break,
                    }
                }
                if let Some(name) = ctor {
                    if ALLOC_CTORS.contains(&name.as_str())
                        && tokens.get(j).is_some_and(|n| n.is_punct("("))
                    {
                        push(format!("{ty}::{name}"), t.line, &mut sites);
                    }
                }
                i = j.max(i + 1);
            }
            (TokenKind::Punct, ".") => {
                if let Some(next) = tokens.get(i + 1) {
                    if next.kind == TokenKind::Ident
                        && ALLOC_METHODS.contains(&next.text.as_str())
                        && tokens.get(i + 2).is_some_and(|p| p.is_punct("("))
                    {
                        push(format!(".{}()", next.text), next.line, &mut sites);
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    sites
}

/// Runs the pass over an analysis context (workspace or fixture tree).
pub(crate) fn analyze(ctx: &Ctx) -> Vec<FlowFinding> {
    let graph = ctx.graph;
    let models = ctx.models;
    let n = graph.fns.len();
    let by_name = callgraph::name_index(&graph.fns);

    // Adjacency with the ambiguous-method refinement (the shared graph
    // keeps full over-resolution for flow's panic soundness; here the
    // alloc detector still covers ambiguous callees if anything else
    // reaches them).
    let mut adjacency: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (caller, f) in graph.fns.iter().enumerate() {
        let Some(body) = f.item.body else { continue };
        let tokens = &models[f.model].tokens;
        for site in call_sites(tokens, body, f.item.impl_type.as_deref()) {
            let resolved = callgraph::resolve_site(&graph.fns, &by_name, &site.path, site.method);
            if site.method && resolved.len() > AMBIGUOUS_METHOD_LIMIT {
                continue;
            }
            for callee in resolved {
                if !graph.fns[callee].item.in_test {
                    adjacency[caller].push((callee, site.line));
                }
            }
        }
    }

    // Forward BFS from the hot entries, tracking parents for witnesses.
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut queue = VecDeque::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        let item = &f.item;
        if item.in_test || item.body.is_none() {
            continue;
        }
        let is_entry = HOT_ENTRY_SUFFIXES.iter().any(|s| qual_suffix(&item.qual, s))
            || HOT_ENTRY_FILES.contains(&item.file.as_str());
        if is_entry {
            dist[idx] = Some(0);
            queue.push_back(idx);
        }
    }
    while let Some(v) = queue.pop_front() {
        let next_dist = dist[v].unwrap_or(0) + 1;
        for &(callee, line) in &adjacency[v] {
            if dist[callee].is_none() {
                dist[callee] = Some(next_dist);
                parent[callee] = Some((v, line));
                queue.push_back(callee);
            }
        }
    }

    let mut findings = Vec::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        if dist[idx].is_none() || f.item.in_test {
            continue;
        }
        let Some(body) = f.item.body else { continue };
        let tokens = &models[f.model].tokens;
        for (what, line) in alloc_sites(tokens, body) {
            let mut chain = Vec::new();
            let mut cursor = idx;
            while let Some((caller, call_line)) = parent[cursor] {
                let item = &graph.fns[cursor].item;
                chain.push(format!("{} ({}:{}) called from", item.qual, item.file, call_line));
                cursor = caller;
                if chain.len() > n {
                    break;
                }
            }
            let entry = &graph.fns[cursor].item;
            chain.push(format!("{} ({}:{}) hot entry", entry.qual, entry.file, entry.line));
            let mut witness =
                vec![format!("{} ({}:{}) allocates: {}", f.item.qual, f.item.file, line, what)];
            witness.extend(chain);
            findings.push(FlowFinding {
                violation: Violation {
                    rule: "hot-alloc",
                    file: f.item.file.clone(),
                    line,
                    content: format!("fn {} allocates: {}", f.item.qual, what),
                },
                witness,
            });
        }
    }
    findings.sort_by(|a, b| {
        (&a.violation.file, a.violation.line).cmp(&(&b.violation.file, b.violation.line))
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::items::{parse_file, FileModel};
    use crate::analysis::scan::{mask_source, test_line_mask};
    use crate::analysis::tokens::tokenize;
    use std::path::Path;

    fn run(files: &[(&str, &str)]) -> Vec<FlowFinding> {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(file, src)| {
                let masked = mask_source(src);
                let test_lines = test_line_mask(&masked);
                parse_file(file, tokenize(&masked), &test_lines, false)
            })
            .collect();
        let graph = callgraph::build(&models);
        let models_leak: &'static [FileModel] = Box::leak(models.into_boxed_slice());
        let graph_leak: &'static callgraph::Graph = Box::leak(Box::new(graph));
        let ctx = Ctx::new(Path::new("/nonexistent"), models_leak, graph_leak, true);
        analyze(&ctx)
    }

    #[test]
    fn allocations_reachable_from_hot_entries_are_found() {
        let findings = run(&[(
            "crates/core/src/cst.rs",
            "impl Cst { pub fn estimate_raw(&self, q: usize) -> usize { compile_plan(q) } }\n\
             fn compile_plan(q: usize) -> usize {\n\
             let mut steps = Vec::new();\n\
             steps.push(q); steps.len()\n\
             }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].violation.rule, "hot-alloc");
        assert_eq!(findings[0].violation.content, "fn core::compile_plan allocates: Vec::new");
        let witness = findings[0].witness.join("\n");
        assert!(witness.contains("hot entry"), "{witness}");
    }

    #[test]
    fn cold_allocations_are_not_reported() {
        let findings = run(&[(
            "crates/core/src/cst.rs",
            "impl Cst { pub fn estimate_raw(&self) -> usize { 0 } }\n\
             pub fn cold() -> Vec<u8> { Vec::new() }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn kernels_file_fns_are_entries() {
        let findings = run(&[(
            "crates/sethash/src/kernels.rs",
            "pub fn union_min_into(a: &[u64]) -> String { a.len().to_string() }",
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].violation.content.contains(".to_string()"), "{findings:?}");
    }
}
