//! Lexical source model for the lint pass.
//!
//! The workspace builds offline, so no `syn`/`proc-macro2` is available —
//! the scanner is a hand-rolled lexer that understands exactly as much
//! Rust as the lint rules need:
//!
//! 1. [`mask_source`] blanks out comments and string/char literal
//!    *contents* (newlines preserved), so rule matching never fires on
//!    text inside a doc comment or an error message.
//! 2. [`test_line_mask`] marks the lines belonging to `#[cfg(test)]`
//!    items (the conventional `mod tests { … }` and any other gated item)
//!    so rules can exempt test code.
//!
//! Both operate on bytes; non-ASCII text only ever appears inside
//! literals and comments, which are masked before any rule looks at them.

/// Replaces the contents of comments and string/char literals with
/// spaces. Delimiters are kept (so `"x"` becomes `" "`) and newlines
/// survive, which keeps line numbers and column positions stable.
pub(crate) fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Writes `b` unless it is being masked; newlines always survive.
    fn push_masked(out: &mut Vec<u8>, b: u8) {
        out.push(if b == b'\n' { b'\n' } else { b' ' });
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    push_masked(&mut out, bytes[i]);
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        push_masked(&mut out, bytes[i]);
                        push_masked(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        push_masked(&mut out, bytes[i]);
                        push_masked(&mut out, bytes[i + 1]);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        push_masked(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        push_masked(&mut out, bytes[i]);
                        push_masked(&mut out, bytes[i + 1]);
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out.push(b'"');
                        i += 1;
                        break;
                    } else {
                        push_masked(&mut out, bytes[i]);
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                // r"…", r#"…"#, br"…", b"…" handled here and below; this
                // arm covers the raw forms (any number of `#`s).
                let start = i;
                i += 1; // past r or b
                if bytes.get(i) == Some(&b'r') {
                    i += 1; // past the r of br
                }
                let mut hashes = 0usize;
                while bytes.get(i) == Some(&b'#') {
                    hashes += 1;
                    i += 1;
                }
                // Opening quote.
                out.extend_from_slice(&bytes[start..=i]);
                i += 1;
                loop {
                    if i >= bytes.len() {
                        break;
                    }
                    if bytes[i] == b'"' && closes_raw(bytes, i, hashes) {
                        out.push(b'"');
                        out.extend(std::iter::repeat_n(b'#', hashes));
                        i += 1 + hashes;
                        break;
                    }
                    push_masked(&mut out, bytes[i]);
                    i += 1;
                }
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                // Plain byte string b"…": emit the b, let the next loop
                // round hit the `"` arm.
                out.push(b'b');
                i += 1;
            }
            b'\'' => {
                // Lifetime or char literal. A char literal is 'x', '\…',
                // or a multi-byte character followed by a closing quote; a
                // lifetime is '<ident> with no closing quote.
                if let Some(end) = char_literal_end(bytes, i) {
                    out.push(b'\'');
                    for &byte in &bytes[i + 1..end] {
                        push_masked(&mut out, byte);
                    }
                    out.push(b'\'');
                    i = end + 1;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    // Masking writes only ASCII in place of multi-byte characters, so the
    // result is valid UTF-8 by construction.
    String::from_utf8(out).unwrap_or_default()
}

/// Is a raw-string opener (`r"`, `r#…"`, `br"`, `br#…"`) at `i`, not an
/// identifier that merely starts with r/b?
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    // Must not be preceded by an identifier character (e.g. `for r` vs
    // `attr"`): a literal prefix starts its own token.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if bytes.get(j) != Some(&b'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Does the `"` at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw(bytes: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// If a char literal starts at the `'` at `i`, returns the index of its
/// closing quote; `None` for lifetimes / loop labels.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escape: the byte after the backslash is part of the escape —
        // `'\''` ends at index 3, not at the escaped quote — then scan
        // to the first unescaped quote (`'\x41'`, `'\u{1F600}'`).
        let mut j = i + 3;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j),
                _ => j += 1,
            }
        }
        return None;
    }
    if next == b'\'' {
        return None; // '' is not a char literal
    }
    // One character (possibly multi-byte) then a quote → char literal.
    let mut j = i + 2;
    while j < bytes.len() && j <= i + 5 {
        if bytes[j] == b'\'' {
            return Some(j);
        }
        // Past one UTF-8 character's worth without a quote: lifetime.
        if bytes[j].is_ascii() {
            break;
        }
        j += 1;
    }
    None
}

/// Returns one flag per line of `masked`: `true` when the line lies
/// inside a `#[cfg(test)]`-gated item (attribute line included). The
/// attribute is matched token-wise, so rustfmt splitting it across
/// lines (`#[cfg(\n    test\n)]`) still gates the item.
pub(crate) fn test_line_mask(masked: &str) -> Vec<bool> {
    let line_count = masked.lines().count();
    let mut flags = vec![false; line_count];
    let bytes = masked.as_bytes();
    let mut search_from = 0;
    while let Some(pos) = find(bytes, b"#", search_from) {
        search_from = pos + 1;
        let Some(attr_end) = cfg_test_end(bytes, pos) else {
            continue;
        };
        let Some((item_start, item_end)) = gated_item_span(bytes, attr_end) else {
            continue;
        };
        let first_line = line_of(bytes, pos);
        let last_line = line_of(bytes, item_end.min(bytes.len().saturating_sub(1)));
        for flag in flags.iter_mut().take(last_line + 1).skip(first_line) {
            *flag = true;
        }
        // Nested `#[cfg(test)]` inside the span is already covered.
        search_from = item_end.max(item_start);
    }
    flags
}

/// If a `#[cfg(test)]` attribute starts at the `#` at `pos` — with any
/// whitespace (including newlines) between its tokens — returns the
/// index just past the closing `]`. Exactly `test` must fill the
/// parentheses: `#[cfg(any(test, …))]` compiles into non-test builds
/// and must not match.
fn cfg_test_end(bytes: &[u8], pos: usize) -> Option<usize> {
    let mut i = pos;
    for token in [&b"#"[..], b"[", b"cfg", b"(", b"test", b")", b"]"] {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if !bytes[i..].starts_with(token) {
            return None;
        }
        i += token.len();
    }
    Some(i)
}

/// Finds the span of the item following a `#[cfg(test)]` attribute that
/// ends at `from`: skips whitespace and further attributes, then either
/// brace-matches a `{ … }` body or runs to the first `;`.
fn gated_item_span(bytes: &[u8], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return None;
        }
        if bytes[i] == b'#' {
            // Another attribute: bracket-match past it.
            while i < bytes.len() && bytes[i] != b'[' {
                i += 1;
            }
            let mut depth = 0usize;
            while i < bytes.len() {
                match bytes[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        break;
    }
    let item_start = i;
    let mut brace_depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => brace_depth += 1,
            b'}' => {
                if brace_depth <= 1 {
                    return Some((item_start, i));
                }
                brace_depth -= 1;
            }
            b';' if brace_depth == 0 => return Some((item_start, i)),
            _ => {}
        }
        i += 1;
    }
    Some((item_start, bytes.len().saturating_sub(1)))
}

fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

fn line_of(bytes: &[u8], pos: usize) -> usize {
    bytes[..pos].iter().filter(|&&b| b == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let masked = mask_source("let x = 1; // unwrap() here\n/* panic! *//*n/*est*/ed*/ y");
        assert!(!masked.contains("unwrap"));
        assert!(!masked.contains("panic"));
        assert!(!masked.contains("est"));
        assert!(masked.contains("let x = 1;"));
        assert!(masked.ends_with(" y"));
    }

    #[test]
    fn masks_string_contents_keeps_delimiters() {
        let masked = mask_source(r#"let s = "call .unwrap() now"; s.len()"#);
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("s.len()"));
        assert!(masked.contains('"'));
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let masked = mask_source(r##"let s = r#"a "quoted" panic!"# ; b"assert!(x)"; br"as f64""##);
        assert!(!masked.contains("panic"));
        assert!(!masked.contains("assert"));
        assert!(!masked.contains("as f64"));
        assert!(masked.contains(';'));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let masked = mask_source(r#"let s = "a\".unwrap()\""; x.f()"#);
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("x.f()"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let masked = mask_source("fn f<'a>(x: &'a str) { let c = 'u'; let e = '\\n'; }");
        assert!(masked.contains("<'a>"));
        assert!(masked.contains("&'a str"));
        assert!(!masked.contains("'u'"));
        assert!(masked.contains("let c = ' '"));
    }

    #[test]
    fn newlines_survive_masking() {
        let src = "a\n// b\nc\n\"d\ne\"\nf";
        assert_eq!(mask_source(src).lines().count(), src.lines().count());
    }

    #[test]
    fn cfg_test_module_lines_flagged() {
        let src = "\
fn library() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(true); }
}

fn also_library() {}
";
        let flags = test_line_mask(&mask_source(src));
        assert!(!flags[0], "library fn is not test code");
        assert!(flags[2], "attribute line is test code");
        assert!(flags[3] && flags[4] && flags[5] && flags[6], "module body is test code");
        assert!(!flags[8], "code after the module is not test code");
    }

    #[test]
    fn cfg_test_with_stacked_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() {\n  x();\n}\nfn lib() {}\n";
        let flags = test_line_mask(&mask_source(src));
        assert!(flags[0] && flags[1] && flags[2] && flags[3] && flags[4]);
        assert!(!flags[5]);
    }

    #[test]
    fn cfg_any_test_feature_is_not_test_only() {
        // `#[cfg(any(test, feature = "audit"))]` compiles into non-test
        // builds — the scanner must NOT treat it as test code.
        let src = "#[cfg(any(test, feature = \"audit\"))]\npub mod audit;\nfn lib() {}\n";
        let flags = test_line_mask(&mask_source(src));
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn escaped_quote_char_literals() {
        // `'\''` and `b'\''` end at the 4th byte, not at the escaped
        // quote — getting this wrong desynchronizes everything after.
        let masked = mask_source("let q = '\\''; let bq = b'\\''; x.unwrap();");
        assert!(masked.contains("x.unwrap();"), "{masked:?}");
        assert!(!masked.contains('\\'), "escape masked: {masked:?}");
        let masked = mask_source("let bs = b'\\\\'; y.f()");
        assert!(masked.contains("y.f()"), "{masked:?}");
    }

    #[test]
    fn unterminated_block_comment_masks_to_eof() {
        let masked = mask_source("fn f() {}\n/* dangling panic!()\nstill comment unwrap()");
        assert!(masked.contains("fn f() {}"));
        assert!(!masked.contains("panic"));
        assert!(!masked.contains("unwrap"));
        assert_eq!(masked.lines().count(), 3, "newlines survive: {masked:?}");
    }

    #[test]
    fn cfg_test_attribute_split_across_lines() {
        let src = "#[cfg(\n    test\n)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib() {}\n";
        let flags = test_line_mask(&mask_source(src));
        assert!(flags[..6].iter().all(|&f| f), "{flags:?}");
        assert!(!flags[6]);
        // `any(test, …)` stays non-test even when split.
        let src = "#[cfg(any(\n    test,\n    feature = \"x\"\n))]\nmod audit {}\n";
        let flags = test_line_mask(&mask_source(src));
        assert!(flags.iter().all(|&f| !f), "{flags:?}");
    }

    #[test]
    fn semicolon_terminated_gated_item() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() { x.unwrap(); }\n";
        let flags = test_line_mask(&mask_source(src));
        assert!(flags[0] && flags[1]);
        assert!(!flags[2]);
    }
}
