//! Conservative workspace call graph.
//!
//! Call sites are extracted from function-body token ranges and resolved
//! by *suffix matching* against every function the item model knows:
//! `Signature::union(` resolves to any fn whose qualified path ends in
//! `Signature::union`, `.record(` to every method named `record`, a bare
//! `load_cst(` to every non-method of that name. Over-resolution is the
//! point — an edge too many makes panic-reachability conservative, an
//! edge too few makes it wrong. Calls that resolve to nothing (std,
//! primitives) are dropped: their panics are modeled as *direct* panic
//! sources at the call site (`unwrap`, indexing, …) by `reach.rs`, not
//! as edges.

use std::collections::BTreeMap;

use crate::analysis::items::{FileModel, FnItem};
use crate::analysis::tokens::{Token, TokenKind};

/// One syntactic call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CallSite {
    /// Path segments (`["Signature", "union"]`); a single segment for
    /// bare and method calls.
    pub(crate) path: Vec<String>,
    /// `receiver.name(…)` rather than `path::name(…)`.
    pub(crate) method: bool,
    /// 1-based line of the call.
    pub(crate) line: usize,
}

/// A resolved caller→callee edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Edge {
    /// Index into [`Graph::fns`].
    pub(crate) callee: usize,
    /// Line of the call site in the caller's file.
    pub(crate) line: usize,
}

/// One function in the global graph: the item plus the index of its
/// [`FileModel`] (for token access).
#[derive(Debug)]
pub(crate) struct GraphFn {
    pub(crate) item: FnItem,
    pub(crate) model: usize,
}

/// The workspace call graph.
#[derive(Debug)]
pub(crate) struct Graph {
    pub(crate) fns: Vec<GraphFn>,
    /// Outgoing edges per fn, deduplicated by callee.
    pub(crate) edges: Vec<Vec<Edge>>,
}

/// Keywords and primitives that look like call names but are not.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "let", "else", "move", "in", "as", "break",
    "continue", "where", "unsafe", "ref", "mut", "box", "dyn", "impl", "fn", "use", "pub", "mod",
    "const", "static", "type", "enum", "struct", "trait", "true", "false", "super", "crate",
];

/// Extracts the call sites in `tokens[range]`. `impl_type` substitutes
/// for a leading `Self` segment.
pub(crate) fn call_sites(
    tokens: &[Token],
    range: (usize, usize),
    impl_type: Option<&str>,
) -> Vec<CallSite> {
    let (start, end) = range;
    let end = end.min(tokens.len());
    let mut sites = Vec::new();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        // Method call: `.name(` (with optional turbofish).
        if t.is_punct(".") {
            if let Some(next) = tokens.get(i + 1) {
                if next.kind == TokenKind::Ident {
                    let mut j = i + 2;
                    if at_punct(tokens, j, "::") && at_punct(tokens, j + 1, "<") {
                        j = skip_angles(tokens, j + 1);
                    }
                    if at_punct(tokens, j, "(") {
                        sites.push(CallSite {
                            path: vec![next.text.clone()],
                            method: true,
                            line: next.line,
                        });
                    }
                    i += 2;
                    continue;
                }
            }
            i += 1;
            continue;
        }
        // Path call: `a::b::name(`, excluding declarations (`fn name(`)
        // and macro invocations (`name!(…)`).
        if t.kind == TokenKind::Ident
            && !NON_CALL_IDENTS.contains(&t.text.as_str())
            && !(i > 0 && (tokens[i - 1].is_punct(".") || tokens[i - 1].is_ident("fn")))
        {
            let line = t.line;
            let mut path = vec![t.text.clone()];
            let mut j = i + 1;
            loop {
                if at_punct(tokens, j, "::") {
                    if at_punct(tokens, j + 1, "<") {
                        j = skip_angles(tokens, j + 1);
                        continue;
                    }
                    if tokens.get(j + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
                        path.push(tokens[j + 1].text.clone());
                        j += 2;
                        continue;
                    }
                }
                break;
            }
            let is_macro = at_punct(tokens, j, "!");
            if at_punct(tokens, j, "(") && !is_macro {
                if path[0] == "Self" {
                    match impl_type {
                        Some(ty) => path[0] = ty.to_owned(),
                        None => {
                            path.remove(0);
                        }
                    }
                }
                if !path.is_empty()
                    && !NON_CALL_IDENTS.contains(&path.last().map(String::as_str).unwrap_or(""))
                {
                    sites.push(CallSite { path, method: false, line });
                }
            }
            // Resume after the path (arguments are scanned normally).
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    sites
}

fn at_punct(tokens: &[Token], i: usize, punct: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(punct))
}

fn skip_angles(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0isize;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "<" if tokens[j].kind == TokenKind::Punct => depth += 1,
            "<<" if tokens[j].kind == TokenKind::Punct => depth += 2,
            ">" if tokens[j].kind == TokenKind::Punct => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            ">>" if tokens[j].kind == TokenKind::Punct => {
                depth -= 2;
                if depth <= 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Bare-name index over the graph's functions, for suffix resolution.
/// Shared by the edge builder and the taint analyzer's per-call-site
/// summary lookups.
pub(crate) fn name_index(fns: &[GraphFn]) -> BTreeMap<String, Vec<usize>> {
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, f) in fns.iter().enumerate() {
        by_name.entry(f.item.name.clone()).or_default().push(idx);
    }
    by_name
}

/// Resolves one call site to every function it may reach, using the
/// same conservative suffix rules the edge builder applies: method
/// calls reach every same-named method, bare calls every same-named
/// free/associated fn, qualified calls everything the final two path
/// segments line up with.
pub(crate) fn resolve_site(
    fns: &[GraphFn],
    by_name: &BTreeMap<String, Vec<usize>>,
    path: &[String],
    method: bool,
) -> Vec<usize> {
    let Some(last) = path.last() else {
        return Vec::new();
    };
    let Some(candidates) = by_name.get(last.as_str()) else {
        return Vec::new();
    };
    let mut resolved = Vec::new();
    for &callee in candidates {
        let target = &fns[callee].item;
        let matches = if method {
            target.has_self
        } else if path.len() == 1 {
            // A bare call can reach free/associated fns only;
            // methods need a receiver or a qualified path.
            !target.has_self && suffix_matches(&target.qual, path)
        } else {
            path_matches(&target.qual, path)
        };
        if matches {
            resolved.push(callee);
        }
    }
    resolved
}

/// Builds the global graph over every file model.
pub(crate) fn build(models: &[FileModel]) -> Graph {
    let mut fns = Vec::new();
    for (model_idx, model) in models.iter().enumerate() {
        for item in &model.fns {
            fns.push(GraphFn { item: item.clone(), model: model_idx });
        }
    }
    let by_name = name_index(&fns);

    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
    for (caller, f) in fns.iter().enumerate() {
        let Some(body) = f.item.body else { continue };
        let tokens = &models[f.model].tokens;
        let sites = call_sites(tokens, body, f.item.impl_type.as_deref());
        let mut seen = vec![false; fns.len()];
        for site in sites {
            for callee in resolve_site(&fns, &by_name, &site.path, site.method) {
                if !seen[callee] {
                    seen[callee] = true;
                    edges[caller].push(Edge { callee, line: site.line });
                }
            }
        }
    }
    Graph { fns, edges }
}

/// Multi-segment call paths can carry module segments the item model
/// never sees (`sig::Signature::union` through a `use … as sig` or a
/// re-export), so leading segments may be dropped — but at least the
/// final two (`Type::name` / `mod::name`) must line up, otherwise
/// `other::union` would degrade to a bare-name match.
fn path_matches(qual: &str, path: &[String]) -> bool {
    (2..=path.len()).any(|k| suffix_matches(qual, &path[path.len() - k..]))
}

/// Do the final segments of `qual` equal `path`?
fn suffix_matches(qual: &str, path: &[String]) -> bool {
    let segments: Vec<&str> = qual.split("::").collect();
    if path.len() > segments.len() {
        return false;
    }
    segments[segments.len() - path.len()..].iter().zip(path).all(|(a, b)| *a == b)
}

impl Graph {
    /// Index of the fn with exactly this qualified path, if unique.
    #[cfg(test)]
    pub(crate) fn find(&self, qual: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.item.qual == qual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::items::parse_file;
    use crate::analysis::scan::{mask_source, test_line_mask};
    use crate::analysis::tokens::tokenize;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(file, src)| {
                let masked = mask_source(src);
                let test_lines = test_line_mask(&masked);
                parse_file(file, tokenize(&masked), &test_lines, false)
            })
            .collect()
    }

    fn edge_quals(graph: &Graph, caller: &str) -> Vec<String> {
        let idx = graph.find(caller).expect("caller exists");
        graph.edges[idx].iter().map(|e| graph.fns[e.callee].item.qual.clone()).collect()
    }

    #[test]
    fn bare_calls_resolve_within_and_across_files() {
        let graph = build(&models(&[
            ("crates/core/src/a.rs", "pub fn entry() { helper(); }\nfn helper() {}"),
            ("crates/util/src/b.rs", "pub fn helper() {}"),
        ]));
        let callees = edge_quals(&graph, "core::entry");
        assert!(callees.contains(&"core::helper".to_owned()));
        assert!(callees.contains(&"util::helper".to_owned()), "conservative cross-crate match");
    }

    #[test]
    fn qualified_calls_match_by_suffix() {
        let graph = build(&models(&[
            ("crates/core/src/a.rs", "pub fn entry() { sig::Signature::union(); other::union(); }"),
            (
                "crates/sethash/src/lib.rs",
                "impl Signature { pub fn union() {} }\npub fn union() {}",
            ),
        ]));
        let callees = edge_quals(&graph, "core::entry");
        assert!(callees.contains(&"sethash::Signature::union".to_owned()));
        // `other::union` does not suffix-match `sethash::union`.
        assert!(!callees.contains(&"sethash::union".to_owned()));
    }

    #[test]
    fn method_calls_resolve_to_methods_only() {
        let graph = build(&models(&[
            ("crates/core/src/a.rs", "pub fn entry(x: W) { x.poke(); poke(); }"),
            ("crates/util/src/b.rs", "impl W { pub fn poke(&self) {} }\npub fn poke() {}"),
        ]));
        let callees = edge_quals(&graph, "core::entry");
        assert!(callees.contains(&"util::W::poke".to_owned()));
        assert!(callees.contains(&"util::poke".to_owned()));
        // The bare `poke()` call must NOT resolve to the method.
        let idx = graph.find("core::entry").expect("entry");
        let method_edges = graph.edges[idx]
            .iter()
            .filter(|e| graph.fns[e.callee].item.qual == "util::W::poke")
            .count();
        assert_eq!(method_edges, 1);
    }

    #[test]
    fn self_calls_resolve_through_the_impl_type() {
        let graph = build(&models(&[(
            "crates/core/src/a.rs",
            "impl Cst { pub fn outer(&self) { Self::inner(); } fn inner() {} }",
        )]));
        let callees = edge_quals(&graph, "core::Cst::outer");
        assert_eq!(callees, ["core::Cst::inner"]);
    }

    #[test]
    fn macro_invocations_are_not_calls_but_their_args_are() {
        let graph = build(&models(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { format!(\"{}\", helper()); } fn helper() {} fn format() {}",
        )]));
        let callees = edge_quals(&graph, "core::entry");
        assert_eq!(callees, ["core::helper"]);
    }

    #[test]
    fn turbofish_paths_still_resolve() {
        let graph = build(&models(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { Signature::<u64>::empty(4); } impl Signature { pub fn empty(n: usize) {} }",
        )]));
        let callees = edge_quals(&graph, "core::entry");
        assert_eq!(callees, ["core::Signature::empty"]);
    }

    #[test]
    fn declarations_are_not_call_sites() {
        let graph = build(&models(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { fn inner() {} inner(); }",
        )]));
        let callees = edge_quals(&graph, "core::entry");
        assert_eq!(callees, ["core::inner"]);
    }
}
