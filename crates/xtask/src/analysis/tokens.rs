//! Token stream for the flow analyzer.
//!
//! `cargo xtask flow` needs more structure than the line-oriented lint
//! rules: call graphs and guard lifetimes are *path* properties, so the
//! analyzer works over a token stream instead of lines. The tokenizer
//! runs on **masked** source (see `scan::mask_source`): comments and
//! literal contents are already blanked, so it only has to split
//! identifiers, numbers, the husks of string/char literals, and
//! punctuation — exactly as much Rust as the item model and call-site
//! extractor consume. No `syn` (the workspace builds offline).

/// One lexical token of masked Rust source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub(crate) kind: TokenKind,
    /// Token text (identifier name, punct characters, literal husk).
    pub(crate) text: String,
    /// 1-based line the token starts on.
    pub(crate) line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer or float; see [`Token::is_float`]).
    Number,
    /// Punctuation: single characters plus the multi-character operators
    /// the analyzer cares about (`::`, `->`, `=>`, `..`, `/=`, …).
    Punct,
    /// The husk of a (masked) string literal.
    Str,
    /// The husk of a (masked) char literal.
    Char,
    /// A lifetime or loop label (`'a`).
    Lifetime,
}

impl Token {
    pub(crate) fn is(&self, kind: TokenKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }

    pub(crate) fn is_ident(&self, text: &str) -> bool {
        self.is(TokenKind::Ident, text)
    }

    pub(crate) fn is_punct(&self, text: &str) -> bool {
        self.is(TokenKind::Punct, text)
    }

    /// Is this number a float literal (`1.5`, `1e9`, `2f64`)? Integer
    /// div/rem is a panic source; float division is not.
    pub(crate) fn is_float(&self) -> bool {
        self.kind == TokenKind::Number
            && (self.text.contains('.')
                || self.text.ends_with("f32")
                || self.text.ends_with("f64")
                || (self.text.contains(['e', 'E'])
                    && !self.text.starts_with("0x")
                    && !self.text.starts_with("0X")))
    }
}

/// Multi-character punctuation, longest first so `..=` wins over `..`.
const MULTI_PUNCT: &[&str] = &[
    "..=", "<<=", ">>=", "::", "->", "=>", "..", "&&", "||", "<<", ">>", "==", "!=", "<=", ">=",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Tokenizes masked source. Total: every byte is consumed; unknown bytes
/// become single-character puncts rather than failures, so a file the
/// masker half-understood still yields a usable (if degraded) stream.
pub(crate) fn tokenize(masked: &str) -> Vec<Token> {
    let bytes = masked.as_bytes();
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' || !b.is_ascii() {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || !bytes[i].is_ascii())
            {
                i += 1;
            }
            tokens.push(Token { kind: TokenKind::Ident, text: masked[start..i].to_owned(), line });
            continue;
        }
        if b.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < bytes.len() {
                let c = bytes[i];
                if c.is_ascii_alphanumeric() || c == b'_' {
                    i += 1;
                } else if c == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                    && !masked[start..i].contains('.')
                {
                    // `1.5` continues the number; `0..n` does not.
                    i += 1;
                } else if (c == b'+' || c == b'-')
                    && matches!(bytes[i - 1], b'e' | b'E')
                    && !masked[start..i].starts_with("0x")
                {
                    // Exponent sign: `1e-3`.
                    i += 1;
                } else {
                    break;
                }
            }
            tokens.push(Token { kind: TokenKind::Number, text: masked[start..i].to_owned(), line });
            continue;
        }
        if b == b'"' {
            // Masked string: contents are spaces/newlines, so the next
            // quote closes it (escapes were blanked by the masker).
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 1).min(bytes.len());
            tokens.push(Token { kind: TokenKind::Str, text: masked[start..i].to_owned(), line });
            continue;
        }
        if b == b'\'' {
            // Masked char literal (`' '`) vs lifetime (`'a`). The masker
            // blanked char contents, so a closing quote within a few
            // bytes means char literal.
            let close = (i + 1..(i + 6).min(bytes.len())).find(|&j| bytes[j] == b'\'');
            if let Some(close) = close {
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: masked[i..=close].to_owned(),
                    line,
                });
                i = close + 1;
                continue;
            }
            let start = i;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Lifetime,
                text: masked[start..i].to_owned(),
                line,
            });
            continue;
        }
        let mut matched = false;
        for punct in MULTI_PUNCT {
            if masked[i..].starts_with(punct) {
                tokens.push(Token { kind: TokenKind::Punct, text: (*punct).to_owned(), line });
                i += punct.len();
                matched = true;
                break;
            }
        }
        if !matched {
            tokens.push(Token { kind: TokenKind::Punct, text: masked[i..i + 1].to_owned(), line });
            i += 1;
        }
    }
    tokens
}

/// Finds the index of the `}` matching the `{` at `open` (token index),
/// or the last token when unbalanced (truncated input degrades to "rest
/// of file", never panics).
pub(crate) fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, token) in tokens.iter().enumerate().skip(open) {
        if token.is_punct("{") {
            depth += 1;
        } else if token.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::scan::mask_source;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(&mask_source(src)).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let tokens = kinds("fn f2(x: u32) -> u64 { x as u64 }");
        assert!(tokens.contains(&(TokenKind::Ident, "fn".into())));
        assert!(tokens.contains(&(TokenKind::Ident, "f2".into())));
        assert!(tokens.contains(&(TokenKind::Punct, "->".into())));
        assert!(tokens.contains(&(TokenKind::Punct, "(".into())));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let tokens = tokenize(&mask_source("a\nb\n\nc"));
        let lines: Vec<usize> = tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn float_vs_integer_literals() {
        let tokens = tokenize(&mask_source("1.5 2 1e9 0x1f 3f64 10_000"));
        let floats: Vec<bool> = tokens.iter().map(Token::is_float).collect();
        assert_eq!(floats, [true, false, true, false, true, false]);
    }

    #[test]
    fn range_is_not_a_float() {
        let tokens = kinds("0..10");
        assert_eq!(
            tokens,
            [
                (TokenKind::Number, "0".into()),
                (TokenKind::Punct, "..".into()),
                (TokenKind::Number, "10".into()),
            ]
        );
    }

    #[test]
    fn strings_and_chars_are_husks() {
        let tokens = kinds(r#"let s = "panic!()"; let c = 'x';"#);
        assert!(tokens.iter().any(|(k, _)| *k == TokenKind::Str));
        assert!(tokens.iter().any(|(k, _)| *k == TokenKind::Char));
        assert!(!tokens.iter().any(|(_, t)| t.contains("panic")));
    }

    #[test]
    fn lifetimes_and_labels() {
        let tokens = kinds("fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } }");
        let lifetimes: Vec<&str> = tokens
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'outer", "'outer"]);
    }

    #[test]
    fn compound_assignment_is_one_token() {
        let tokens = kinds("x /= y; x %= z; a::b(c)");
        assert!(tokens.contains(&(TokenKind::Punct, "/=".into())));
        assert!(tokens.contains(&(TokenKind::Punct, "%=".into())));
        assert!(tokens.contains(&(TokenKind::Punct, "::".into())));
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers() {
        // The masked husk of a raw string spans its original lines, so
        // tokens after it must not collapse onto the opening line.
        let src = "let s = r#\"one\ntwo\nthree\"#;\nlet after = 1;";
        let tokens = tokenize(&mask_source(src));
        let after = tokens.iter().find(|t| t.is_ident("after")).expect("after token");
        assert_eq!(after.line, 4, "{tokens:?}");
    }

    #[test]
    fn nested_turbofish_generics_tokenize_structurally() {
        // `Vec::<Vec<u8>>::with_capacity` — the closing `>>` is one
        // token; angle-skippers must account for both levels at once.
        let tokens = kinds("Vec::<Vec<u8>>::with_capacity(n)");
        assert!(tokens.contains(&(TokenKind::Punct, ">>".into())), "{tokens:?}");
        assert!(tokens.contains(&(TokenKind::Ident, "with_capacity".into())));
        let shifts = tokens.iter().filter(|(_, t)| t == ">>").count();
        assert_eq!(shifts, 1);
    }

    #[test]
    fn question_mark_chains_are_single_puncts() {
        let tokens = kinds("let v = parse(input)?.decode()?;");
        let questions = tokens.iter().filter(|(_, t)| t == "?").count();
        assert_eq!(questions, 2, "{tokens:?}");
        assert!(tokens.contains(&(TokenKind::Ident, "decode".into())));
    }

    #[test]
    fn matching_brace_handles_nesting_and_truncation() {
        let tokens = tokenize(&mask_source("{ a { b } c }"));
        assert_eq!(matching_brace(&tokens, 0), tokens.len() - 1);
        let truncated = tokenize(&mask_source("{ a { b }"));
        assert_eq!(matching_brace(&truncated, 0), truncated.len() - 1);
    }
}
