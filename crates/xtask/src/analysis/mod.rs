//! Shared source-analysis infrastructure for the xtask analyzers.
//!
//! `cargo xtask flow` and `cargo xtask taint` work over the same
//! pipeline: mask the source (`scan`), tokenize it (`tokens`), extract a
//! brace-aware item model (`items`), and resolve a conservative
//! workspace call graph (`callgraph`). The lint pass reuses the masking
//! and test-line layers. Everything here is dependency-free by design —
//! the build container is offline, so no `syn`, no `walkdir`; see the
//! module docs of each layer for exactly how much Rust each one
//! understands.

pub(crate) mod callgraph;
pub(crate) mod guards;
pub(crate) mod items;
pub(crate) mod scan;
pub(crate) mod tokens;

use std::fs;
use std::path::Path;

use items::FileModel;

/// Recursively collects `.rs` files under `dir` as repo-relative
/// `/`-separated paths, skipping build output, VCS internals, and the
/// analyzer fixture trees (fixtures hold deliberately-bad patterns that
/// must never leak into workspace reports; the taint self-test scans
/// them explicitly).
pub(crate) fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "results" | "fixtures") {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: Vec<_> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                out.push(rel.join("/"));
            }
        }
    }
}

/// Masks, tokenizes and item-models every file in `files` (repo-relative
/// paths under `root`). Unreadable files degrade to a warning, matching
/// the historical behavior of both passes.
pub(crate) fn build_models(root: &Path, files: &[String]) -> Vec<FileModel> {
    let mut models = Vec::with_capacity(files.len());
    for file in files {
        match fs::read_to_string(root.join(file)) {
            Ok(src) => {
                let masked = scan::mask_source(&src);
                let test_lines = scan::test_line_mask(&masked);
                models.push(items::parse_file(
                    file,
                    tokens::tokenize(&masked),
                    &test_lines,
                    crate::rules::test_path(file),
                ));
            }
            Err(err) => {
                eprintln!("warning: cannot read {file}: {err}");
            }
        }
    }
    models
}

/// Collects and sorts the workspace source set rooted at `root`.
pub(crate) fn workspace_files(root: &Path) -> Vec<String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort();
    files
}
