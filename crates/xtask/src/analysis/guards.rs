//! Shared guard (sanitizer) recognition.
//!
//! Both the taint pass and the race pass's unsafe-contract audit need
//! to answer the same question: does this call validate a value? Taint
//! uses it to clean expressions flowing toward sinks; the race pass
//! uses it to accept a raw-pointer length as carrying a dominating
//! validated bound. Keeping the list in one place means a new guard
//! (say, a future `checked_shl` helper) is recognized by every analyzer
//! at once.

/// Is `name` a sanitizing call? The whole expression it appears in is
/// treated as validated: `checked_*`/`saturating_*` bound arithmetic,
/// `try_into`/`try_from` reject out-of-range conversions, `min`/`clamp`
/// impose an upper bound.
pub(crate) fn is_guard_ident(name: &str) -> bool {
    name.starts_with("checked_")
        || name.starts_with("saturating_")
        || matches!(name, "try_into" | "try_from" | "min" | "clamp")
}

/// Comparison operators that establish a bound on their operands — a
/// variable observed in one of these (typically inside an `if`
/// condition) counts as range-checked from there on. Shared between the
/// taint walker's comparison sanitization and the race pass's
/// dominating-bound search.
pub(crate) const COMPARISON_OPS: &[&str] = &["<", "<=", ">", ">=", "==", "!="];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_idents_cover_the_sanitizer_families() {
        assert!(is_guard_ident("checked_add"));
        assert!(is_guard_ident("saturating_sub"));
        assert!(is_guard_ident("try_into"));
        assert!(is_guard_ident("min"));
        assert!(is_guard_ident("clamp"));
        assert!(!is_guard_ident("unchecked_add"));
        assert!(!is_guard_ident("max"));
    }
}
