//! Brace-aware item model for the flow analyzer.
//!
//! Walks a file's token stream (see `tokens.rs`) and extracts the items
//! the call graph needs: function declarations with their qualified
//! paths (`crate::module::Type::name`), visibility, `self`-ness, return
//! type text, and body token ranges — plus the names of struct fields
//! holding `Mutex`/`RwLock` values, which seed the lock-discipline pass.
//!
//! The model is deliberately *conservative*, not complete: nested
//! functions are attributed to their lexical module (not the enclosing
//! function), and a nested function's tokens remain inside the outer
//! function's body range, so the outer function inherits the nested
//! one's call sites. Over-approximation is safe for reachability; what
//! matters is never *losing* an edge.

use crate::analysis::tokens::{matching_brace, Token, TokenKind};

/// One `fn` item (free function, inherent/trait method, or default
/// trait method).
#[derive(Debug, Clone)]
pub(crate) struct FnItem {
    /// Bare function name.
    pub(crate) name: String,
    /// Qualified path: `crate::module::Type::name`.
    pub(crate) qual: String,
    /// Repo-relative file path.
    pub(crate) file: String,
    /// 1-based line of the `fn` keyword.
    pub(crate) line: usize,
    /// Declared `pub` (unrestricted; `pub(crate)` and friends are not
    /// entry points and count as private here).
    pub(crate) is_pub: bool,
    /// Takes `self` in any form (method).
    pub(crate) has_self: bool,
    /// Takes `self` exclusively (`&mut self` or by-value `mut self`) —
    /// such methods cannot race and are exempt from lockset inference.
    pub(crate) self_mut: bool,
    /// Inside `#[cfg(test)]` code or a test-path file.
    pub(crate) in_test: bool,
    /// Enclosing `impl`/`trait` type name, if any.
    pub(crate) impl_type: Option<String>,
    /// Parameter names in declaration order, `self` excluded. Pattern
    /// parameters (`(a, b): (u32, u32)`) contribute nothing — the taint
    /// summaries that consume this list degrade to "no flow tracked"
    /// for such parameters, which only loses precision, never soundness
    /// of what *is* tracked.
    pub(crate) params: Vec<String>,
    /// Return type text (tokens joined with spaces), empty for `()`.
    pub(crate) ret: String,
    /// Body token range `[start, end)` into the file's token vector
    /// (exclusive of the braces); `None` for bodyless declarations.
    pub(crate) body: Option<(usize, usize)>,
}

/// One declared struct field or `static` item: name, flattened type
/// text (token texts joined with spaces, e.g. `RwLock < Vec < Entry > >`),
/// and declaration line.
#[derive(Debug, Clone)]
pub(crate) struct FieldDecl {
    pub(crate) name: String,
    pub(crate) ty: String,
    pub(crate) line: usize,
}

/// One struct declaration with its named fields (tuple structs carry no
/// named state the race pass can track and are skipped).
#[derive(Debug)]
pub(crate) struct StructDecl {
    pub(crate) name: String,
    pub(crate) fields: Vec<FieldDecl>,
}

/// What kind of `unsafe` region a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe fn` item (the span covers the body).
    Fn,
    /// `unsafe impl … for …` (the race pass audits `Send`/`Sync`).
    Impl,
}

/// One `unsafe` region: kind, line range, and — for `unsafe impl` — the
/// asserted trait name (`Send`/`Sync`) when one is present.
#[derive(Debug)]
pub(crate) struct UnsafeSpan {
    pub(crate) kind: UnsafeKind,
    /// 1-based line of the `unsafe` keyword.
    pub(crate) line: usize,
    /// 1-based line of the closing brace (== `line` for bodyless items).
    pub(crate) end_line: usize,
    /// `Some("Send" | "Sync" | …)` for `unsafe impl Trait for Type`.
    pub(crate) trait_name: Option<String>,
    /// The implementing type for `unsafe impl Trait for Type`.
    pub(crate) for_type: Option<String>,
    /// Inside `#[cfg(test)]` code or a test-path file.
    pub(crate) in_test: bool,
}

/// Everything the analyzer extracted from one file.
#[derive(Debug)]
pub(crate) struct FileModel {
    /// Repo-relative path.
    pub(crate) file: String,
    /// The file's full token stream (masked source).
    pub(crate) tokens: Vec<Token>,
    /// Functions declared in the file.
    pub(crate) fns: Vec<FnItem>,
    /// Names of struct fields with `Mutex<…>` / `RwLock<…>` types.
    pub(crate) lock_fields: Vec<String>,
    /// Struct declarations with full (name, type, line) field lists.
    pub(crate) structs: Vec<StructDecl>,
    /// `static NAME: TY` items (including `static mut`).
    pub(crate) statics: Vec<FieldDecl>,
    /// `type Alias = Ty;` items, `(alias, flattened type text)` — lets
    /// the race pass see through `type Flag = AtomicBool;`.
    pub(crate) type_aliases: Vec<(String, String)>,
    /// `unsafe` blocks, fns and impls, for the unsafe-contract audit.
    pub(crate) unsafe_spans: Vec<UnsafeSpan>,
}

/// The crate segment for a repo-relative path: `crates/<name>/…` uses
/// the directory name; the root `src/` tree is the meta-crate.
pub(crate) fn crate_of(file: &str) -> String {
    let mut parts = file.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_owned(),
        _ => "twig_repro".to_owned(),
    }
}

/// Builds the item model for one file. `test_lines` is the per-line
/// `#[cfg(test)]` mask from `scan::test_line_mask`; `path_is_test`
/// marks whole files that are test-only by location (`tests/`, …).
pub(crate) fn parse_file(
    file: &str,
    tokens: Vec<Token>,
    test_lines: &[bool],
    path_is_test: bool,
) -> FileModel {
    let krate = crate_of(file);
    let mut fns = Vec::new();
    let mut lock_fields = Vec::new();
    let mut structs = Vec::new();
    let mut statics = Vec::new();
    let mut type_aliases = Vec::new();
    let unsafe_spans = collect_unsafe_spans(&tokens, test_lines, path_is_test);

    // (name, depth inside the scope): popped when depth drops back.
    let mut scopes: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut pending_pub = false;
    let mut i = 0usize;

    let in_test_line = |line: usize| {
        path_is_test || test_lines.get(line.saturating_sub(1)).copied().unwrap_or(false)
    };

    while i < tokens.len() {
        let t = &tokens[i];
        match (&t.kind, t.text.as_str()) {
            (TokenKind::Punct, "#") if next_is(&tokens, i + 1, "[") => {
                i = skip_balanced(&tokens, i + 1, "[", "]");
            }
            (TokenKind::Punct, "{") => {
                depth += 1;
                pending_pub = false;
                i += 1;
            }
            (TokenKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                while scopes.last().is_some_and(|&(_, d)| d > depth) {
                    scopes.pop();
                }
                pending_pub = false;
                i += 1;
            }
            (TokenKind::Punct, ";" | ",") => {
                pending_pub = false;
                i += 1;
            }
            (TokenKind::Ident, "pub") => {
                if next_is(&tokens, i + 1, "(") {
                    // pub(crate) / pub(super): not an external entry point.
                    i = skip_balanced(&tokens, i + 1, "(", ")");
                } else {
                    pending_pub = true;
                    i += 1;
                }
            }
            (TokenKind::Ident, "mod") if is_ident(&tokens, i + 1) => {
                let name = tokens[i + 1].text.clone();
                pending_pub = false;
                if next_is(&tokens, i + 2, "{") {
                    scopes.push((name, depth + 1));
                    depth += 1;
                    i += 3;
                } else {
                    i += 2; // `mod foo;`
                }
            }
            (TokenKind::Ident, "impl" | "trait") => {
                let (type_name, after) = parse_impl_head(&tokens, i);
                pending_pub = false;
                if next_is(&tokens, after, "{") {
                    scopes.push((type_name, depth + 1));
                    depth += 1;
                    i = after + 1;
                } else {
                    i = after.max(i + 1);
                }
            }
            (TokenKind::Ident, "struct" | "enum" | "union") if is_ident(&tokens, i + 1) => {
                pending_pub = false;
                let struct_name = tokens[i + 1].text.clone();
                let mut j = i + 2;
                if next_is(&tokens, j, "<") {
                    j = skip_angles(&tokens, j);
                }
                while j < tokens.len()
                    && !tokens[j].is_punct("{")
                    && !tokens[j].is_punct("(")
                    && !tokens[j].is_punct(";")
                {
                    j += 1;
                }
                if next_is(&tokens, j, "{") {
                    let close = matching_brace(&tokens, j);
                    if t.text == "struct" {
                        let fields = collect_fields(&tokens[j + 1..close]);
                        for field in &fields {
                            if type_mentions(&field.ty, &["Mutex", "RwLock"]) {
                                lock_fields.push(field.name.clone());
                            }
                        }
                        structs.push(StructDecl { name: struct_name, fields });
                    }
                    i = close + 1; // field types hold no fn items
                } else if next_is(&tokens, j, "(") {
                    i = skip_balanced(&tokens, j, "(", ")");
                } else {
                    i = j + 1;
                }
            }
            (TokenKind::Ident, "static") if is_static_item(&tokens, i) => {
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if is_ident(&tokens, j) && next_is(&tokens, j + 1, ":") {
                    let name = tokens[j].text.clone();
                    let line = tokens[j].line;
                    let (ty, after) = flatten_type(&tokens, j + 2, &["=", ";"]);
                    statics.push(FieldDecl { name, ty, line });
                    pending_pub = false;
                    i = after;
                } else {
                    i += 1;
                }
            }
            (TokenKind::Ident, "type")
                if is_ident(&tokens, i + 1) && next_is(&tokens, i + 2, "=") =>
            {
                let alias = tokens[i + 1].text.clone();
                let (ty, after) = flatten_type(&tokens, i + 3, &[";"]);
                type_aliases.push((alias, ty));
                pending_pub = false;
                i = after;
            }
            (TokenKind::Ident, "macro_rules") if next_is(&tokens, i + 1, "!") => {
                pending_pub = false;
                let mut j = i + 2;
                while j < tokens.len() && !tokens[j].is_punct("{") {
                    j += 1;
                }
                i = matching_brace(&tokens, j) + 1;
            }
            (TokenKind::Ident, "fn") if is_ident(&tokens, i + 1) => {
                let is_pub = pending_pub;
                pending_pub = false;
                let name = tokens[i + 1].text.clone();
                let line = t.line;
                let (has_self, self_mut, params, ret, body_open) = parse_fn_head(&tokens, i + 2);
                let impl_type = match scopes.last() {
                    Some((scope, d)) if *d == depth && is_type_name(scope) => Some(scope.clone()),
                    _ => None,
                };
                let mut qual = krate.clone();
                for (segment, _) in &scopes {
                    qual.push_str("::");
                    qual.push_str(segment);
                }
                qual.push_str("::");
                qual.push_str(&name);
                let body = match body_open {
                    Some(open) => {
                        let close = matching_brace(&tokens, open);
                        Some((open + 1, close))
                    }
                    None => None,
                };
                fns.push(FnItem {
                    name,
                    qual,
                    file: file.to_owned(),
                    line,
                    is_pub,
                    has_self,
                    self_mut,
                    in_test: in_test_line(line),
                    impl_type,
                    params,
                    ret,
                    body,
                });
                // Walk *into* the body: nested items are still parsed.
                i = match body_open {
                    Some(open) => open, // the `{` arm bumps depth
                    None => i + 2,
                };
            }
            _ => {
                i += 1;
            }
        }
    }

    lock_fields.sort();
    lock_fields.dedup();
    FileModel {
        file: file.to_owned(),
        tokens,
        fns,
        lock_fields,
        structs,
        statics,
        type_aliases,
        unsafe_spans,
    }
}

/// Does `static` at `i` start a static item? (`'static` lifetimes are a
/// different token kind; this only needs to recognize the
/// `static [mut] NAME :` shape.)
fn is_static_item(tokens: &[Token], i: usize) -> bool {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    is_ident(tokens, j) && next_is(tokens, j + 1, ":")
}

/// Flattens a type expression starting at `start` into token texts
/// joined with spaces, stopping at the first of `stops` at nesting
/// depth 0. Returns the text and the index of the stop token.
fn flatten_type(tokens: &[Token], start: usize, stops: &[&str]) -> (String, usize) {
    let mut ty = String::new();
    let mut depth = 0isize;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                s if depth <= 0 && stops.contains(&s) => break,
                "<" | "(" | "[" => depth += 1,
                "<<" => depth += 2,
                ">" | ")" | "]" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
        }
        if !ty.is_empty() {
            ty.push(' ');
        }
        ty.push_str(&t.text);
        j += 1;
    }
    (ty, j)
}

/// Does the flattened type text mention one of `names` as a whole token?
pub(crate) fn type_mentions(ty: &str, names: &[&str]) -> bool {
    ty.split(' ').any(|tok| names.contains(&tok))
}

/// Collects `unsafe` regions: blocks, fn bodies, and impls (with the
/// asserted trait name for `unsafe impl Send/Sync for T`). A linear
/// pre-pass independent of the item state machine, so nesting inside
/// skipped regions (struct bodies, macros) cannot hide a span.
fn collect_unsafe_spans(
    tokens: &[Token],
    test_lines: &[bool],
    path_is_test: bool,
) -> Vec<UnsafeSpan> {
    let in_test_line = |line: usize| {
        path_is_test || test_lines.get(line.saturating_sub(1)).copied().unwrap_or(false)
    };
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("unsafe") {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        let in_test = in_test_line(line);
        let mut j = i + 1;
        // `unsafe extern "C" fn` / `unsafe fn`: skip qualifiers.
        while tokens.get(j).is_some_and(|t| t.is_ident("extern") || t.kind == TokenKind::Str) {
            j += 1;
        }
        match tokens.get(j) {
            Some(t) if t.is_punct("{") => {
                let close = matching_brace(tokens, j);
                let end_line = tokens.get(close).map_or(line, |t| t.line);
                spans.push(UnsafeSpan {
                    kind: UnsafeKind::Block,
                    line,
                    end_line,
                    trait_name: None,
                    for_type: None,
                    in_test,
                });
                i = j + 1; // walk into the block: nested unsafe still scans
            }
            Some(t) if t.is_ident("fn") => {
                // Body = first `{` before a `;` (bodyless trait decls
                // have none).
                let mut k = j + 1;
                while k < tokens.len() && !tokens[k].is_punct("{") && !tokens[k].is_punct(";") {
                    k += 1;
                }
                let end_line = if next_is(tokens, k, "{") {
                    let close = matching_brace(tokens, k);
                    tokens.get(close).map_or(line, |t| t.line)
                } else {
                    line
                };
                spans.push(UnsafeSpan {
                    kind: UnsafeKind::Fn,
                    line,
                    end_line,
                    trait_name: None,
                    for_type: None,
                    in_test,
                });
                i = j + 1;
            }
            Some(t) if t.is_ident("impl") => {
                // Trait name: the last plain ident before `for` (or the
                // `{` when there is no `for` clause).
                let mut trait_name = None;
                let mut k = j + 1;
                let mut angle = 0isize;
                while k < tokens.len() {
                    let t = &tokens[k];
                    match (&t.kind, t.text.as_str()) {
                        (TokenKind::Punct, "{" | ";") if angle <= 0 => break,
                        (TokenKind::Ident, "for") if angle <= 0 => break,
                        (TokenKind::Punct, "<") => angle += 1,
                        (TokenKind::Punct, "<<") => angle += 2,
                        (TokenKind::Punct, ">") => angle -= 1,
                        (TokenKind::Punct, ">>") => angle -= 2,
                        (TokenKind::Ident, name) if angle <= 0 => {
                            trait_name = Some(name.to_owned());
                        }
                        _ => {}
                    }
                    k += 1;
                }
                // The implementing type: last plain ident before the
                // body (after `for`, when present).
                let mut for_type = None;
                let mut angle = 0isize;
                while k < tokens.len() && !tokens[k].is_punct("{") && !tokens[k].is_punct(";") {
                    let t = &tokens[k];
                    match (&t.kind, t.text.as_str()) {
                        (TokenKind::Punct, "<") => angle += 1,
                        (TokenKind::Punct, "<<") => angle += 2,
                        (TokenKind::Punct, ">") => angle -= 1,
                        (TokenKind::Punct, ">>") => angle -= 2,
                        (TokenKind::Ident, name)
                            if angle <= 0 && name != "for" && name != "where" =>
                        {
                            for_type = Some(name.to_owned());
                        }
                        _ => {}
                    }
                    k += 1;
                }
                let end_line = if next_is(tokens, k, "{") {
                    let close = matching_brace(tokens, k);
                    tokens.get(close).map_or(line, |t| t.line)
                } else {
                    line
                };
                spans.push(UnsafeSpan {
                    kind: UnsafeKind::Impl,
                    line,
                    end_line,
                    trait_name,
                    for_type,
                    in_test,
                });
                i = j + 1;
            }
            _ => {
                // `unsafe trait`, fn-pointer types, …: no auditable span.
                i = j;
            }
        }
    }
    spans
}

/// Heuristic: impl/trait scope names are capitalized type names; module
/// scopes are snake_case. Used to decide whether the innermost scope
/// contributes an `impl_type`.
fn is_type_name(name: &str) -> bool {
    name.chars().next().is_some_and(char::is_uppercase)
}

fn is_ident(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
}

fn next_is(tokens: &[Token], i: usize, punct: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(punct))
}

/// Skips a balanced `open`…`close` pair starting at `i` (which must be
/// the opener); returns the index after the closer.
fn skip_balanced(tokens: &[Token], i: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].is_punct(open) {
            depth += 1;
        } else if tokens[j].is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Skips a balanced generic-argument list starting at the `<` at `i`.
/// `>>` closes two levels (shift tokens double as generic closers).
fn skip_angles(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0isize;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "<" | "<<" if tokens[j].kind == TokenKind::Punct => {
                depth += if tokens[j].text == "<<" { 2 } else { 1 };
            }
            ">" | ">>" if tokens[j].kind == TokenKind::Punct => {
                depth -= if tokens[j].text == ">>" { 2 } else { 1 };
                if depth <= 0 {
                    return j + 1;
                }
            }
            "->" | "=>" if tokens[j].kind == TokenKind::Punct => {}
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Parses an `impl`/`trait` head starting at the keyword. Returns the
/// scope name (the implementing type for `impl Trait for Type`) and the
/// index of the expected `{`.
fn parse_impl_head(tokens: &[Token], i: usize) -> (String, usize) {
    let mut j = i + 1;
    if next_is(tokens, j, "<") {
        j = skip_angles(tokens, j);
    }
    let mut last_type = String::new();
    let mut angle = 0isize;
    while j < tokens.len() {
        let t = &tokens[j];
        match (&t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") if angle <= 0 => break,
            (TokenKind::Punct, ";") if angle <= 0 => break,
            (TokenKind::Ident, "for") if angle <= 0 => {
                last_type.clear(); // the implementing type follows
            }
            (TokenKind::Ident, "where") if angle <= 0 => {
                while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
                    j += 1;
                }
                break;
            }
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, "<<") => angle += 2,
            (TokenKind::Punct, ">") => angle -= 1,
            (TokenKind::Punct, ">>") => angle -= 2,
            (TokenKind::Ident, name) if angle <= 0 && name != "dyn" && name != "mut" => {
                last_type = name.to_owned();
            }
            _ => {}
        }
        j += 1;
    }
    (last_type, j)
}

/// Parses a fn head after the name: generics, parameter list (checking
/// for `self` and collecting parameter names), return type text, and
/// the index of the body `{` (None for `;`-terminated declarations).
fn parse_fn_head(
    tokens: &[Token],
    mut j: usize,
) -> (bool, bool, Vec<String>, String, Option<usize>) {
    if next_is(tokens, j, "<") {
        j = skip_angles(tokens, j);
    }
    let mut has_self = false;
    let mut self_mut = false;
    let mut params = Vec::new();
    if next_is(tokens, j, "(") {
        let end = skip_balanced(tokens, j, "(", ")");
        // `self` in the first parameter slot (before the first
        // top-level comma) marks a method. A parameter name is an
        // identifier directly followed by `:` at paren depth 1 while
        // still in binding position (before that parameter's type
        // started) — identifiers inside type expressions sit either at
        // deeper nesting or after the `:`.
        let mut depth = 0usize;
        let mut in_binding = true;
        for (offset, t) in tokens[j..end].iter().enumerate() {
            match t.text.as_str() {
                "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
                ")" | "]" | "}" if t.kind == TokenKind::Punct => depth = depth.saturating_sub(1),
                "," if t.kind == TokenKind::Punct && depth == 1 => in_binding = true,
                ":" if t.kind == TokenKind::Punct && depth == 1 => in_binding = false,
                "self" if t.kind == TokenKind::Ident && params.is_empty() && in_binding => {
                    has_self = true;
                    // `&mut self` / by-value `mut self` = exclusive
                    // receiver; `&self` and `self: Arc<Self>` are not.
                    self_mut = j + offset >= 1
                        && tokens.get(j + offset - 1).is_some_and(|p| p.is_ident("mut"));
                }
                _ if t.kind == TokenKind::Ident
                    && depth == 1
                    && in_binding
                    && next_is(tokens, j + offset + 1, ":") =>
                {
                    params.push(t.text.clone());
                }
                _ => {}
            }
        }
        j = end;
    }
    let mut ret = String::new();
    if next_is(tokens, j, "->") {
        j += 1;
        let mut angle = 0isize;
        // `[u8; 8]` return types contain a `;` that must not terminate
        // the scan; track bracket/paren nesting alongside angles.
        let mut nest = 0isize;
        while j < tokens.len() {
            let t = &tokens[j];
            match (&t.kind, t.text.as_str()) {
                (TokenKind::Punct, "{" | ";") if angle <= 0 && nest <= 0 => break,
                (TokenKind::Ident, "where") if angle <= 0 && nest <= 0 => break,
                (TokenKind::Punct, "<") => angle += 1,
                (TokenKind::Punct, "<<") => angle += 2,
                (TokenKind::Punct, ">") => angle -= 1,
                (TokenKind::Punct, ">>") => angle -= 2,
                (TokenKind::Punct, "[" | "(") => nest += 1,
                (TokenKind::Punct, "]" | ")") => nest -= 1,
                _ => {}
            }
            if !ret.is_empty() {
                ret.push(' ');
            }
            ret.push_str(&t.text);
            j += 1;
        }
    }
    // Where clause (and anything else) up to the body or terminator.
    while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
        j += 1;
    }
    if next_is(tokens, j, "{") {
        (has_self, self_mut, params, ret, Some(j))
    } else {
        (has_self, self_mut, params, ret, None)
    }
}

/// Records every named struct field with its flattened type text. The
/// lock-discipline pass filters for `Mutex`/`RwLock` mentions; the race
/// pass additionally needs atomics, cells and plain fields.
fn collect_fields(body: &[Token]) -> Vec<FieldDecl> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        if body[i].kind == TokenKind::Ident && next_is(body, i + 1, ":") {
            let name = body[i].text.clone();
            let line = body[i].line;
            let (ty, after) = flatten_type(body, i + 2, &[","]);
            out.push(FieldDecl { name, ty, line });
            i = after;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::scan::{mask_source, test_line_mask};
    use crate::analysis::tokens::tokenize;

    fn model(file: &str, src: &str) -> FileModel {
        let masked = mask_source(src);
        let test_lines = test_line_mask(&masked);
        parse_file(file, tokenize(&masked), &test_lines, false)
    }

    #[test]
    fn free_fns_and_methods_are_qualified() {
        let src = "
pub fn top() {}
mod inner {
    fn helper() {}
    impl Widget {
        pub fn poke(&self) {}
        fn quiet() {}
    }
}
";
        let m = model("crates/core/src/x.rs", src);
        let quals: Vec<&str> = m.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            [
                "core::top",
                "core::inner::helper",
                "core::inner::Widget::poke",
                "core::inner::Widget::quiet"
            ]
        );
        assert!(m.fns[0].is_pub && !m.fns[1].is_pub);
        assert!(m.fns[2].has_self && !m.fns[3].has_self);
        assert_eq!(m.fns[2].impl_type.as_deref(), Some("Widget"));
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src = "impl std::fmt::Display for LoadError { fn fmt(&self) {} }";
        let m = model("crates/serve/src/x.rs", src);
        assert_eq!(m.fns[0].qual, "serve::LoadError::fmt");
    }

    #[test]
    fn generic_impl_blocks_resolve_the_base_type() {
        let src = "impl<C: Component> Signature<C> { pub fn len(&self) -> usize { 0 } }";
        let m = model("crates/sethash/src/lib.rs", src);
        assert_eq!(m.fns[0].qual, "sethash::Signature::len");
        assert_eq!(m.fns[0].ret, "usize");
    }

    #[test]
    fn pub_crate_is_not_an_entry_point() {
        let src = "pub(crate) fn internal() {} pub fn external() {}";
        let m = model("crates/core/src/x.rs", src);
        assert!(!m.fns[0].is_pub);
        assert!(m.fns[1].is_pub);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "
fn lib() {}
#[cfg(test)]
mod tests {
    fn t() {}
}
";
        let m = model("crates/core/src/x.rs", src);
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
    }

    #[test]
    fn guard_return_types_are_captured() {
        let src = "
struct R { entries: RwLock<Vec<Entry>>, plain: usize }
impl R {
    fn read_entries(&self) -> std::sync::RwLockReadGuard<'_, Vec<Entry>> { x }
}
";
        let m = model("crates/serve/src/x.rs", src);
        assert_eq!(m.lock_fields, ["entries"]);
        assert!(m.fns[0].ret.contains("RwLockReadGuard"));
    }

    #[test]
    fn nested_fn_bodies_stay_inside_the_outer_range() {
        let src = "fn outer() { fn inner() { poke(); } inner(); }";
        let m = model("crates/core/src/x.rs", src);
        assert_eq!(m.fns.len(), 2);
        let (outer, inner) = (&m.fns[0], &m.fns[1]);
        let (os, oe) = outer.body.unwrap_or((0, 0));
        let (is_, ie) = inner.body.unwrap_or((0, 0));
        assert!(os < is_ && ie <= oe, "inner range nests in outer");
    }

    #[test]
    fn bodyless_trait_methods_have_no_body() {
        let src = "trait Probe { fn poke(&self); fn dflt(&self) { self.poke() } }";
        let m = model("crates/core/src/x.rs", src);
        assert!(m.fns[0].body.is_none());
        assert!(m.fns[1].body.is_some());
        assert_eq!(m.fns[1].qual, "core::Probe::dflt");
    }

    #[test]
    fn struct_bodies_do_not_hide_following_items() {
        let src = "struct S { a: u32 } pub fn after() {}";
        let m = model("crates/core/src/x.rs", src);
        assert_eq!(m.fns.len(), 1);
        assert!(m.fns[0].is_pub);
    }

    #[test]
    fn struct_fields_carry_types_and_lines() {
        let src = "
struct State {
    shutdown: AtomicBool,
    entries: RwLock<Vec<Entry>>,
    generation: u64,
    state: [AtomicU8; 4],
}
";
        let m = model("crates/serve/src/x.rs", src);
        assert_eq!(m.structs.len(), 1);
        let s = &m.structs[0];
        assert_eq!(s.name, "State");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["shutdown", "entries", "generation", "state"]);
        assert!(type_mentions(&s.fields[0].ty, &["AtomicBool"]));
        assert!(type_mentions(&s.fields[3].ty, &["AtomicU8"]), "{}", s.fields[3].ty);
        assert!(!type_mentions(&s.fields[2].ty, &["AtomicU64"]));
        assert_eq!(m.lock_fields, ["entries"]);
        assert_eq!(s.fields[1].line, 4);
    }

    #[test]
    fn statics_and_type_aliases_are_collected() {
        let src = "
type Flag = AtomicBool;
static ACTIVE: Flag = Flag::new(false);
static mut RAW: u64 = 0;
fn with_lifetime(x: &'static str) {}
";
        let m = model("crates/util/src/x.rs", src);
        assert_eq!(m.type_aliases, [("Flag".to_owned(), "AtomicBool".to_owned())]);
        let names: Vec<&str> = m.statics.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["ACTIVE", "RAW"]);
        assert_eq!(m.statics[0].ty, "Flag");
    }

    #[test]
    fn unsafe_block_vs_unsafe_fn_spans() {
        let src = "
fn outer() {
    let x = unsafe {
        do_thing()
    };
}
unsafe fn raw_read(p: *const u8) -> u8 {
    *p
}
trait T { unsafe fn decl(&self); }
";
        let m = model("crates/flat/src/x.rs", src);
        assert_eq!(m.unsafe_spans.len(), 3, "{:?}", m.unsafe_spans);
        assert_eq!(m.unsafe_spans[0].kind, UnsafeKind::Block);
        assert_eq!((m.unsafe_spans[0].line, m.unsafe_spans[0].end_line), (3, 5));
        assert_eq!(m.unsafe_spans[1].kind, UnsafeKind::Fn);
        assert_eq!((m.unsafe_spans[1].line, m.unsafe_spans[1].end_line), (7, 9));
        // Bodyless trait declaration: the span collapses to its line.
        assert_eq!(m.unsafe_spans[2].kind, UnsafeKind::Fn);
        assert_eq!(m.unsafe_spans[2].line, m.unsafe_spans[2].end_line);
    }

    #[test]
    fn unsafe_impl_send_sync_carries_the_trait_name() {
        let src = "
unsafe impl Send for Region {}
unsafe impl Sync for Region {}
unsafe impl<T> MarkerWith<T> for Holder<T> {}
";
        let m = model("crates/flat/src/x.rs", src);
        let traits: Vec<Option<&str>> =
            m.unsafe_spans.iter().map(|s| s.trait_name.as_deref()).collect();
        assert_eq!(traits, [Some("Send"), Some("Sync"), Some("MarkerWith")]);
        assert!(m.unsafe_spans.iter().all(|s| s.kind == UnsafeKind::Impl));
        let types: Vec<Option<&str>> =
            m.unsafe_spans.iter().map(|s| s.for_type.as_deref()).collect();
        assert_eq!(types, [Some("Region"), Some("Region"), Some("Holder")]);
    }

    #[test]
    fn mut_self_receivers_are_distinguished() {
        let src = "
impl S {
    fn shared(&self) {}
    fn excl(&mut self) {}
    fn owned(mut self) {}
    fn free(x: u32) {}
}
";
        let m = model("crates/serve/src/x.rs", src);
        let muts: Vec<bool> = m.fns.iter().map(|f| f.self_mut).collect();
        assert_eq!(muts, [false, true, true, false]);
    }

    #[test]
    fn unsafe_extern_fn_is_a_fn_span() {
        let src = "unsafe extern \"C\" fn cb(x: u32) -> u32 { x }";
        let m = model("crates/flat/src/x.rs", src);
        assert_eq!(m.unsafe_spans.len(), 1);
        assert_eq!(m.unsafe_spans[0].kind, UnsafeKind::Fn);
    }
}
