//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! Four analyzers, described in DESIGN.md §9, §12 and §14:
//!
//! - `lint` — twig-lint, line-oriented rules over masked source.
//! - `flow` — twig-flow, the call-graph analyzer: panic-reachability of
//!   every public entry point of the strict crates (with witness call
//!   chains) plus lock-discipline over the strict-scope crates.
//! - `taint` — twig-taint, the dataflow analyzer: untrusted-input
//!   taint tracking into arithmetic/indexing/allocation sinks, plus the
//!   allocation-discipline pass over the hot-path entry points.
//! - `race` — twig-race, the concurrency analyzer: GuardedBy-inference
//!   lockset checking, atomic-ordering discipline (publication via
//!   `Relaxed`, mismatched `compare_exchange` orderings, spin locks),
//!   and the unsafe-contract audit (SAFETY comments, validated
//!   raw-pointer bounds).
//!
//! All are dependency-free by design — the build container is offline,
//! so no `syn`, no `serde`, no `walkdir`; the shared lexer, tokenizer,
//! item model and call graph live in the `analysis` module, and the
//! JSON reports are printed by hand.
//!
//! ```text
//! cargo xtask lint                     # human report, exit 1 on new violations
//! cargo xtask lint --json              # machine-readable report on stdout
//! cargo xtask lint --update-baseline   # accept the current state
//! cargo xtask flow                     # panic-reachability + lock discipline
//! cargo xtask flow --json              # same, machine-readable (with witnesses)
//! cargo xtask taint                    # taint dataflow + hot-path allocations
//! cargo xtask taint --self-test        # verify the fixture tree is fully flagged
//! cargo xtask race                     # locksets + atomics + unsafe contracts
//! cargo xtask race --self-test         # verify the race fixture tree
//! ```

mod analysis;
mod baseline;
mod bench;
mod chaos;
mod hotalloc;
mod locks;
mod race;
mod reach;
mod rules;
mod taint;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use reach::FlowFinding;
use rules::Violation;

const BASELINE_FILE: &str = "lint-baseline.tsv";
const FLOW_BASELINE_FILE: &str = "flow-baseline.tsv";

/// Path prefixes the lock-discipline pass runs over: the serving layer
/// plus the two crates whose locks it shares state with — flat's mmap
/// hosting and util's failpoint table are both touched cross-thread.
const LOCK_SCOPES: &[&str] = &["crates/serve/src/", "crates/flat/src/", "crates/util/src/"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("flow") => flow(&args[1..]),
        Some("taint") => taint::taint_task(&args[1..]),
        Some("race") => race::race_task(&args[1..]),
        Some("bench") => bench::bench(&args[1..]),
        Some("chaos") => chaos::chaos(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task '{other}'\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
cargo xtask — workspace automation

TASKS:
  lint [--json] [--update-baseline] [--baseline FILE] [--root DIR]
      Run the twig-lint static-analysis pass over every workspace .rs
      file. Exits non-zero when violations beyond the baseline exist.
  flow [--json] [--update-baseline] [--baseline FILE] [--root DIR]
      Run the twig-flow call-graph analyzer: panic-reachability of every
      public entry point of the strict crates (each finding carries a
      witness call chain) and lock-discipline over the strict-scope
      crates (serve, flat, util). Exits non-zero when findings beyond
      the baseline exist.
  taint [--json] [--update-baseline] [--baseline FILE] [--root DIR] [--self-test]
      Run the twig-taint dataflow analyzer: untrusted-input taint
      (HTTP buffers, deserialized frames, CLI/env input) flowing into
      indexing / length-arithmetic / allocation sinks without a
      recognized guard, propagated interprocedurally via per-function
      summaries, plus the allocation-discipline pass reporting heap
      allocations reachable from the hot-path entry points.
      --self-test checks the analyzer against its fixture tree of
      known-bad patterns instead of the workspace.
  race [--json] [--update-baseline] [--baseline FILE] [--root DIR] [--self-test]
      Run the twig-race concurrency analyzer: GuardedBy-inference
      lockset checking over shared struct fields, atomic-ordering
      discipline (Relaxed publication, mismatched compare_exchange
      orderings, atomics spun as ad-hoc locks), and the unsafe-contract
      audit (SAFETY justification comments, raw-pointer/len pairs
      flowing from a validated bound). --self-test checks the analyzer
      against its annotated fixture tree instead of the workspace.
  bench [--quick] [--out FILE] [--check FILE]
      Run the estimation benchmark harness (seeded corpora, warmup +
      trimmed-mean timing): summary build, CSR vs hashmap trie lookups,
      per-algorithm estimates, the plan-cache hit path, and served
      throughput. --check fails on a >2x regression vs a prior report.
  chaos [--seeds N]
      Run the seeded chaos harness: the real server in-process under
      deterministic fault injection (reload-during-batch, kill-mid-write
      snapshot recovery, socket resets, pool-worker panics). Requires
      building xtask with --features failpoints.";

/// Shared CLI flags for the baseline-driven passes.
struct PassArgs {
    json: bool,
    update: bool,
    baseline_path: Option<PathBuf>,
    root: Option<PathBuf>,
}

fn parse_pass_args(args: &[String]) -> Result<PassArgs, String> {
    let mut parsed = PassArgs { json: false, update: false, baseline_path: None, root: None };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--update-baseline" => parsed.update = true,
            "--baseline" => match iter.next() {
                Some(path) => parsed.baseline_path = Some(PathBuf::from(path)),
                None => return Err("--baseline needs a value".to_owned()),
            },
            "--root" => match iter.next() {
                Some(path) => parsed.root = Some(PathBuf::from(path)),
                None => return Err("--root needs a value".to_owned()),
            },
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(parsed)
}

fn lint(args: &[String]) -> ExitCode {
    let started = std::time::Instant::now();
    let PassArgs { json, update, baseline_path, root } = match parse_pass_args(args) {
        Ok(parsed) => parsed,
        Err(message) => return usage_error(&message),
    };
    let root = root.unwrap_or_else(workspace_root);
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(BASELINE_FILE));

    let files = analysis::workspace_files(&root);

    let mut violations: Vec<Violation> = Vec::new();
    for file in &files {
        match fs::read_to_string(root.join(file)) {
            Ok(src) => violations.extend(rules::check_file(file, &src)),
            Err(err) => {
                eprintln!("warning: cannot read {file}: {err}");
            }
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    if update {
        let rendered = baseline::render(&violations);
        if let Err(err) = fs::write(&baseline_path, rendered) {
            eprintln!("error: cannot write {}: {err}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "baseline updated: {} violation(s) across {} file(s) recorded in {}",
            violations.len(),
            files.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(parsed) => parsed,
            Err(err) => {
                eprintln!("error: {}: {err}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Default::default(), // no baseline: everything is new
    };
    let scanned = files.len();
    let (old, fresh) = baseline::partition(violations, &baseline);

    let elapsed_ms = started.elapsed().as_millis();
    if json {
        println!("{}", json_report(scanned, &old, &fresh, elapsed_ms));
    } else {
        human_report(scanned, &old, &fresh, elapsed_ms);
    }
    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn flow(args: &[String]) -> ExitCode {
    let started = std::time::Instant::now();
    let PassArgs { json, update, baseline_path, root } = match parse_pass_args(args) {
        Ok(parsed) => parsed,
        Err(message) => return usage_error(&message),
    };
    let root = root.unwrap_or_else(workspace_root);
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(FLOW_BASELINE_FILE));

    // Stage 1: tokenize + item model for every file.
    let files = analysis::workspace_files(&root);
    let models = analysis::build_models(&root, &files);

    // Stage 2: call graph; stage 3: panic-reachability; stage 4: locks.
    let graph = analysis::callgraph::build(&models);
    let mut findings = reach::panic_reachability(&models, &graph);
    findings.extend(locks::analyze(&models, &graph, LOCK_SCOPES));
    findings.sort_by(|a, b| {
        (&a.violation.file, a.violation.line, a.violation.rule).cmp(&(
            &b.violation.file,
            b.violation.line,
            b.violation.rule,
        ))
    });

    if update {
        let violations: Vec<Violation> = findings.iter().map(|f| f.violation.clone()).collect();
        let rendered =
            baseline::render_titled("twig-flow", "cargo xtask flow --update-baseline", &violations);
        if let Err(err) = fs::write(&baseline_path, rendered) {
            eprintln!("error: cannot write {}: {err}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "baseline updated: {} finding(s) across {} file(s) recorded in {}",
            findings.len(),
            files.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(parsed) => parsed,
            Err(err) => {
                eprintln!("error: {}: {err}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Default::default(), // no baseline: everything is new
    };
    let scanned = files.len();
    let (old, fresh) =
        baseline::partition_by(findings, &baseline, |f| baseline::key_of(&f.violation));

    let elapsed_ms = started.elapsed().as_millis();
    if json {
        println!("{}", flow_json_report("twig-flow", scanned, &old, &fresh, elapsed_ms));
    } else {
        flow_human_report("twig-flow", scanned, &old, &fresh, elapsed_ms);
    }
    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Shared human report for the witness-carrying passes (flow, taint,
/// race).
fn flow_human_report(
    pass: &str,
    scanned: usize,
    old: &[FlowFinding],
    fresh: &[FlowFinding],
    elapsed_ms: u128,
) {
    for finding in fresh {
        let v = &finding.violation;
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.content);
        for hop in &finding.witness {
            println!("    {hop}");
        }
    }
    println!(
        "{pass}: {scanned} files scanned, {} new finding(s), {} baselined, {elapsed_ms}ms",
        fresh.len(),
        old.len()
    );
    if !fresh.is_empty() {
        let task = pass.trim_start_matches("twig-");
        println!(
            "  break the witness chains above (check the length, handle the error), or run\n  \
             `cargo xtask {task} --update-baseline` if they are intentional pre-existing debt"
        );
    }
}

/// Shared JSON report for the witness-carrying passes (flow, taint,
/// race). `elapsed_ms` is the pass's wall time — CI sums these across
/// analyzers and gates on regression (see `analyzer-budget.ms`).
fn flow_json_report(
    pass: &str,
    scanned: usize,
    old: &[FlowFinding],
    fresh: &[FlowFinding],
    elapsed_ms: u128,
) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"pass\":\"{}\",\"files_scanned\":{scanned},\"elapsed_ms\":{elapsed_ms},\"new\":{},\"baselined\":{},\"findings\":[",
        json_escape(pass),
        fresh.len(),
        old.len()
    ));
    let mut first = true;
    for (finding, is_new) in fresh.iter().map(|f| (f, true)).chain(old.iter().map(|f| (f, false))) {
        if !first {
            out.push(',');
        }
        first = false;
        let v = &finding.violation;
        let witness = finding
            .witness
            .iter()
            .map(|hop| format!("\"{}\"", json_escape(hop)))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"new\":{},\"content\":\"{}\",\"witness\":[{}]}}",
            json_escape(v.rule),
            json_escape(&v.file),
            v.line,
            is_new,
            json_escape(&v.content),
            witness
        ));
    }
    out.push_str("]}");
    out
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n{USAGE}");
    ExitCode::FAILURE
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn human_report(scanned: usize, old: &[Violation], fresh: &[Violation], elapsed_ms: u128) {
    for violation in fresh {
        println!(
            "{}:{}: [{}] {}",
            violation.file, violation.line, violation.rule, violation.content
        );
    }
    println!(
        "twig-lint: {scanned} files scanned, {} new violation(s), {} baselined, {elapsed_ms}ms",
        fresh.len(),
        old.len()
    );
    if !fresh.is_empty() {
        println!(
            "  fix the lines above, or run `cargo xtask lint --update-baseline` if they are\n  \
             intentional pre-existing debt"
        );
    }
}

/// Renders the machine-readable report. Hand-rolled (offline build, no
/// serde); `json_escape` covers everything source lines can contain.
fn json_report(scanned: usize, old: &[Violation], fresh: &[Violation], elapsed_ms: u128) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"files_scanned\":{scanned},\"elapsed_ms\":{elapsed_ms},\"new\":{},\"baselined\":{},\"violations\":[",
        fresh.len(),
        old.len()
    ));
    let mut first = true;
    for (violation, is_new) in fresh.iter().map(|v| (v, true)).chain(old.iter().map(|v| (v, false)))
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"new\":{},\"content\":\"{}\"}}",
            json_escape(violation.rule),
            json_escape(&violation.file),
            violation.line,
            is_new,
            json_escape(&violation.content)
        ));
    }
    out.push_str("]}");
    out
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny\tz"), "x\\ny\\tz");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_report_shape() {
        let fresh = vec![Violation {
            rule: "no-unwrap",
            file: "crates/core/src/a.rs".into(),
            line: 3,
            content: "x.unwrap() // \"quoted\"".into(),
        }];
        let report = json_report(10, &[], &fresh, 42);
        assert!(report.starts_with('{') && report.ends_with('}'));
        assert!(report.contains("\"files_scanned\":10"));
        assert!(report.contains("\"elapsed_ms\":42"));
        assert!(report.contains("\"new\":1"));
        assert!(report.contains("\\\"quoted\\\""));
    }

    #[test]
    fn collect_skips_target_and_fixtures_and_finds_sources() {
        let root = workspace_root();
        let files = analysis::workspace_files(&root);
        assert!(files.iter().any(|f| f == "crates/core/src/cst.rs"), "{files:?}");
        assert!(files.iter().all(|f| !f.starts_with("target/")));
        assert!(files.iter().all(|f| !f.contains("/fixtures/")), "{files:?}");
    }

    #[test]
    fn end_to_end_on_synthetic_tree() {
        // Build a small fake workspace in a temp dir, seed a violation,
        // and drive the same functions `lint` composes.
        let dir = std::env::temp_dir().join(format!("twig-xtask-test-{}", std::process::id()));
        let src_dir = dir.join("crates/core/src");
        fs::create_dir_all(&src_dir).expect("mkdir");
        fs::write(src_dir.join("lib.rs"), "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n")
            .expect("write");
        let mut files = Vec::new();
        analysis::collect_rs_files(&dir, &dir, &mut files);
        assert_eq!(files, ["crates/core/src/lib.rs"]);
        let src = fs::read_to_string(dir.join(&files[0])).expect("read");
        let violations = rules::check_file(&files[0], &src);
        assert_eq!(violations.len(), 1);

        // Baselining it silences the pass; a second unwrap is new again.
        let parsed = baseline::parse(&baseline::render(&violations)).expect("parse");
        let (old, fresh) = baseline::partition(violations.clone(), &parsed);
        assert_eq!((old.len(), fresh.len()), (1, 0));
        let more = rules::check_file(
            &files[0],
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\npub fn g(y: Option<u32>) -> u32 { y.unwrap() }\n",
        );
        let (_, fresh) = baseline::partition(more, &parsed);
        assert_eq!(fresh.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
