//! The twig-lint rule set.
//!
//! Each rule matches on *masked* source lines (comments and literal
//! contents blanked by `scan::mask_source`) and is scoped by path, so the
//! checks stay cheap and deterministic. Violation text is taken from the
//! original line for readable reports.

use crate::analysis::scan::{mask_source, test_line_mask};

/// One finding: a rule fired on a line of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Violation {
    /// Rule identifier (stable; keys the baseline).
    pub(crate) rule: &'static str,
    /// Repo-relative path with `/` separators.
    pub(crate) file: String,
    /// 1-based line number.
    pub(crate) line: usize,
    /// The offending line, trimmed (from the unmasked source).
    pub(crate) content: String,
}

/// The estimator-pipeline crates held to the strictest standard: their
/// library paths must be panic-free (violations burn down via the
/// baseline). `crates/serve` joined with an empty baseline — the serving
/// layer was written panic-free from the start and must stay that way.
/// The failpoint module joined the same way: fault injection sits inside
/// every hardened I/O path, so it gets the strictest treatment of all
/// (its intentional panic stage uses `std::panic::panic_any`, which is
/// not in the banned macro family).
const STRICT_SCOPES: &[&str] = &[
    "crates/core/src/",
    "crates/sethash/src/",
    "crates/pst/src/",
    "crates/serve/src/",
    "crates/flat/src/",
    "crates/util/src/failpoint.rs",
];

/// Files inside the strict scope that may still hold bare
/// count↔estimate `as` casts (none today; the checked helpers live in
/// `twig_util::cast`, outside the scope by construction).
const CAST_ALLOWLIST: &[&str] = &[];

/// Files allowed to contain `unsafe` (additions need a code review that
/// lands them here *and* an `unsafe_code` lint override). The mmap shim
/// and the reactor's syscall shim are the workspace's two unsafe
/// boundaries: raw FFI calls (mmap/munmap, epoll/socket) plus the
/// `Send`/`Sync` assertions for the read-only mapping.
const UNSAFE_ALLOWLIST: &[&str] = &["crates/flat/src/mmap.rs", "crates/serve/src/reactor/sys.rs"];

/// Is `file` (repo-relative) test-ish by location alone? Integration
/// tests, benches, examples and build scripts may panic freely.
/// Shared with the flow analyzer, which scopes its entry points the
/// same way.
pub(crate) fn test_path(file: &str) -> bool {
    file.split('/').any(|part| {
        matches!(part, "tests" | "benches" | "examples") || part == "build.rs"
    })
        // The lint driver itself is a dev tool, not pipeline code.
        || file.starts_with("crates/xtask/")
}

pub(crate) fn in_strict_scope(file: &str) -> bool {
    STRICT_SCOPES.iter().any(|scope| file.starts_with(scope))
}

/// Scope of the bare-cast rule: the strict estimator crates. `twig-util`
/// is exempt — it is where the checked conversion helpers
/// (`twig_util::cast`) are implemented, and a cast helper must be allowed
/// to cast.
fn in_cast_scope(file: &str) -> bool {
    in_strict_scope(file) && !CAST_ALLOWLIST.contains(&file)
}

/// True when `masked[pos..]` starts a match of `needle` on an identifier
/// boundary (the previous byte is not part of an identifier).
fn word_match(masked: &str, pos: usize) -> bool {
    pos == 0 || {
        let prev = masked.as_bytes()[pos - 1];
        !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b'.')
    }
}

/// Occurrences of `needle` in `line` on identifier boundaries. A needle
/// that *starts* with a non-identifier byte (`.expect(`) carries its own
/// boundary: the preceding byte is the receiver (`y.expect(` inside a
/// chained `unwrap_or_else` closure), and demanding a word boundary
/// there would silently skip every such hit.
fn word_occurrences(line: &str, needle: &str, boundary: bool) -> usize {
    let self_bounded =
        needle.as_bytes().first().is_some_and(|&b| !(b.is_ascii_alphanumeric() || b == b'_'));
    let mut count = 0;
    let mut from = 0;
    while let Some(at) = line[from..].find(needle) {
        let pos = from + at;
        if !boundary || self_bounded || word_match(line, pos) {
            count += 1;
        }
        from = pos + needle.len();
    }
    count
}

/// Patterns whose presence on a non-test line of a strict-scope file is a
/// `no-unwrap` violation.
const UNWRAP_PATTERNS: &[&str] = &[".unwrap()", ".expect("];

/// Panic-family macros banned from strict-scope library paths.
/// `debug_assert*` is deliberately absent: it compiles out of release
/// builds and is the sanctioned way to state internal expectations.
const PANIC_PATTERNS: &[&str] =
    &["panic!", "assert!", "assert_eq!", "assert_ne!", "unreachable!", "todo!", "unimplemented!"];

/// Count↔estimate domain casts: `… as f64` (count widened without saying
/// whether it is exact) and `… as u64` (estimate truncated without saying
/// what happens to NaN). `twig_util::cast` provides the checked versions.
const CAST_PATTERNS: &[&str] = &["as f64", "as u64"];

/// Runs every rule over one file. `file` is the repo-relative path,
/// `src` its full text.
pub(crate) fn check_file(file: &str, src: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    if test_path(file) {
        return violations;
    }
    let masked = mask_source(src);
    let test_lines = test_line_mask(&masked);
    let originals: Vec<&str> = src.lines().collect();

    for (idx, line) in masked.lines().enumerate() {
        if test_lines.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let mut report = |rule: &'static str| {
            violations.push(Violation {
                rule,
                file: file.to_owned(),
                line: idx + 1,
                content: originals.get(idx).unwrap_or(&"").trim().to_owned(),
            });
        };

        if in_strict_scope(file) {
            for pattern in UNWRAP_PATTERNS {
                for _ in 0..word_occurrences(line, pattern, true) {
                    report("no-unwrap");
                }
            }
            for pattern in PANIC_PATTERNS {
                for _ in 0..word_occurrences(line, pattern, true) {
                    report("no-panic");
                }
            }
        }
        if in_cast_scope(file) {
            for pattern in CAST_PATTERNS {
                for _ in 0..cast_occurrences(line, pattern) {
                    report("no-bare-cast");
                }
            }
        }
        if !UNSAFE_ALLOWLIST.contains(&file)
            && word_occurrences(line, "unsafe", true) > 0
            && !line.contains("forbid(unsafe")
            && !line.contains("deny(unsafe")
        {
            report("no-unsafe");
        }
    }
    violations
}

/// Occurrences of a cast pattern (`as f64` / `as u64`) as whole words:
/// `as` must sit on identifier boundaries on both sides and the type name
/// must not continue (`as f64x4` would be some other type).
fn cast_occurrences(line: &str, pattern: &str) -> usize {
    let mut count = 0;
    let mut from = 0;
    while let Some(at) = line[from..].find(pattern) {
        let pos = from + at;
        let end = pos + pattern.len();
        let left_ok = word_match(line, pos);
        let right_ok =
            line.as_bytes().get(end).is_none_or(|&b| !(b.is_ascii_alphanumeric() || b == b'_'));
        if left_ok && right_ok {
            count += 1;
        }
        from = end;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_strict_library_code_flagged() {
        let violations = check_file("crates/core/src/foo.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "no-unwrap");
        assert_eq!(violations[0].line, 1);
    }

    #[test]
    fn expect_flagged_expect_err_not_double_counted() {
        let violations = check_file("crates/pst/src/foo.rs", "fn f() { x.expect(\"reason\"); }\n");
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn expect_inside_chained_closure_counted_once() {
        // Regression: with the boundary check applied to dot-prefixed
        // needles, the `.expect(` here sits right after the receiver
        // `y` and was skipped entirely.
        let src = "fn f() { x.unwrap_or_else(|| y.expect(\"fallback\")); }\n";
        let violations = check_file("crates/core/src/foo.rs", src);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "no-unwrap");
    }

    #[test]
    fn unwrap_or_is_fine() {
        let violations = check_file(
            "crates/core/src/foo.rs",
            "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }\n",
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn panic_family_flagged_debug_assert_allowed() {
        let src = "fn f() { assert!(x); assert_eq!(a, b); panic!(\"no\"); debug_assert!(y); }\n";
        let violations = check_file("crates/sethash/src/lib.rs", src);
        let rules: Vec<_> = violations.iter().map(|v| v.rule).collect();
        assert_eq!(rules, ["no-panic", "no-panic", "no-panic"], "{violations:?}");
    }

    #[test]
    fn test_code_and_test_files_exempt() {
        let gated = "#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); panic!(); }\n}\n";
        assert!(check_file("crates/core/src/foo.rs", gated).is_empty());
        let test_file = "fn t() { x.unwrap(); }\n";
        assert!(check_file("crates/core/tests/it.rs", test_file).is_empty());
        assert!(check_file("examples/demo.rs", test_file).is_empty());
    }

    #[test]
    fn out_of_scope_crates_not_held_to_unwrap_rule() {
        let violations = check_file("crates/cli/src/lib.rs", "fn f() { x.unwrap(); }\n");
        assert!(violations.is_empty());
    }

    #[test]
    fn serve_crate_is_strict_including_binaries() {
        let src = "fn f() { x.unwrap(); let y = n as f64; }\n";
        let rules: Vec<_> = check_file("crates/serve/src/server.rs", src)
            .iter()
            .map(|v| v.rule)
            .collect::<Vec<_>>();
        assert_eq!(rules, ["no-unwrap", "no-bare-cast"]);
        let rules: Vec<_> = check_file("crates/serve/src/bin/loadgen.rs", src)
            .iter()
            .map(|v| v.rule)
            .collect::<Vec<_>>();
        assert_eq!(rules, ["no-unwrap", "no-bare-cast"]);
        // The serve crate's integration tests stay exempt like everyone's.
        assert!(check_file("crates/serve/tests/server.rs", src).is_empty());
    }

    #[test]
    fn bare_casts_flagged_in_scope_allowed_in_cast_module() {
        let src = "fn f(n: u64) -> f64 { n as f64 }\n";
        let violations = check_file("crates/core/src/foo.rs", src);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "no-bare-cast");
        assert!(check_file("crates/util/src/cast.rs", src).is_empty());
        // Other numeric casts are not this rule's business.
        assert!(check_file("crates/core/src/foo.rs", "fn f(n: usize) { n as u32; }\n").is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// call .unwrap() as f64\nfn f() { let s = \"panic! as u64\"; }\n";
        assert!(check_file("crates/core/src/foo.rs", src).is_empty());
    }

    #[test]
    fn unsafe_flagged_everywhere_lint_attrs_exempt() {
        let violations =
            check_file("crates/cli/src/lib.rs", "unsafe { std::hint::unreachable_unchecked() }\n");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "no-unsafe");
        assert!(check_file("crates/cli/src/lib.rs", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn multiple_hits_on_one_line_counted_separately() {
        let src = "fn f() { a.unwrap(); b.unwrap(); }\n";
        assert_eq!(check_file("crates/core/src/foo.rs", src).len(), 2);
    }
}
