//! Concurrency-safety analysis (`cargo xtask race`) — DESIGN.md §14.
//!
//! The fourth analyzer on the shared substrate, built ahead of the
//! event-loop rewrite of `crates/serve`: readiness-driven state
//! machines will share connection and registry state across cores, and
//! the runtime suites only observe schedules that happen to occur. The
//! pass is three audits over the item model:
//!
//! 1. **Lockset inference** (`race-lockset`): for every struct holding
//!    at least one `Mutex`/`RwLock` field, simulate guard lifetimes
//!    through its methods (the same simulation `locks.rs` uses) and
//!    record which locks are held at each access to a plain (not
//!    self-synchronizing) field. If the field is guarded *somewhere*,
//!    every access must hold the majority lock; accesses that don't
//!    are flagged with witnesses citing the guarded sites. Fields never
//!    guarded anywhere are left alone — immutable-after-construction
//!    state is the common legitimate shape.
//! 2. **Atomic-ordering discipline** (`race-atomic-publish`,
//!    `race-cas-order`, `race-atomic-lock`): every atomic site (method
//!    form `x.store(…)` and qualified form `AtomicBool::store(&X, …)`)
//!    is resolved to its declaring field or static — through `type`
//!    aliases — and the entity is classified by role: *counter* (RMW
//!    traffic, stores only reset), *latch* (has compare_exchange),
//!    *flag* (bool), *stamp* (everything else). Flagged patterns:
//!    `Relaxed` publication (a store that must release prior writes, or
//!    an asymmetric `Relaxed` half of an Acquire/Release pair),
//!    `compare_exchange` with a failure ordering stronger than its
//!    success ordering, and atomics spun as ad-hoc locks.
//! 3. **Unsafe-contract audit** (`race-unsafe-comment`,
//!    `race-unsafe-impl`, `race-unsafe-bound`): every `unsafe` block or
//!    fn needs a SAFETY comment within a few lines above it;
//!    `unsafe impl Send/Sync` needs a written justification; and every
//!    `from_raw_parts`-family length operand must be a literal, share
//!    its receiver with the pointer operand (a struct invariant), or
//!    trace to a dominating validated bound (the guard recognition
//!    shared with taint via `analysis::guards`).
//!
//! False-positive policy: the pass over-approximates on purpose (no
//! types, no cross-file aliasing) and routes deliberate exceptions
//! through `race-baseline.tsv`, whose comment headers carry per-group
//! justifications. A counter's `Relaxed` traffic is exempt by role, a
//! never-guarded field is not a finding, and a site only counts as
//! atomic when an `Ordering::` argument is present — receiver-name
//! collisions (`registry.load(spec)`) never misclassify.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;
use std::process::ExitCode;

use crate::analysis;
use crate::analysis::guards::{is_guard_ident, COMPARISON_OPS};
use crate::analysis::items::{FileModel, FnItem, UnsafeKind};
use crate::analysis::scan::{mask_source, test_line_mask};
use crate::analysis::tokens::{Token, TokenKind};
use crate::baseline;
use crate::locks::{at_punct, binds_to_let, first_lock_receiver, matching_paren, receiver_lock};
use crate::reach::FlowFinding;
use crate::rules::Violation;

pub(crate) const RACE_BASELINE_FILE: &str = "race-baseline.tsv";

/// Atomic cell type names (resolved through `type` aliases too).
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// Method names that touch an atomic cell. A site only registers when
/// the call also carries an `Ordering::` argument.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Field types that synchronize themselves — exempt from lockset
/// inference. `Counter`/`LogHistogram` are the util metric cells
/// (internally atomic).
const SELF_SYNC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "OnceLock",
    "Once",
    "Condvar",
    "Counter",
    "LogHistogram",
];

/// Mutating method names that count as "non-atomic writes" before a
/// publication store.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "remove",
    "clear",
    "extend",
    "append",
    "truncate",
    "copy_from_slice",
    "clone_from",
    "write_all",
    "fill",
];

/// Compound-assignment puncts (plain `=` handled separately so
/// `let`-bindings can be excluded).
const ASSIGN_OPS: &[&str] = &["+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>="];

pub(crate) struct RaceCtx<'a> {
    pub(crate) models: &'a [FileModel],
    /// Raw (unmasked) sources by file — the SAFETY-comment checks must
    /// see comment text the masker blanks.
    pub(crate) sources: BTreeMap<String, String>,
    /// Self-test mode: report findings in `#[cfg(test)]` code too.
    pub(crate) report_all: bool,
}

impl<'a> RaceCtx<'a> {
    pub(crate) fn new(root: &Path, models: &'a [FileModel], report_all: bool) -> Self {
        let mut sources = BTreeMap::new();
        for model in models {
            if let Ok(src) = fs::read_to_string(root.join(&model.file)) {
                sources.insert(model.file.clone(), src);
            }
        }
        RaceCtx { models, sources, report_all }
    }
}

pub(crate) fn analyze(ctx: &RaceCtx) -> Vec<FlowFinding> {
    let mut findings = lockset_pass(ctx);
    findings.extend(atomic_pass(ctx));
    findings.extend(unsafe_pass(ctx));
    findings.sort_by(|a, b| {
        (&a.violation.file, a.violation.line, a.violation.rule).cmp(&(
            &b.violation.file,
            b.violation.line,
            b.violation.rule,
        ))
    });
    findings
}

fn skip_fn(f: &FnItem, ctx: &RaceCtx) -> bool {
    f.in_test && !ctx.report_all
}

/// Innermost fn whose span covers `line`, for stable finding text.
fn enclosing_qual(model: &FileModel, line: usize) -> String {
    model
        .fns
        .iter()
        .filter(|f| {
            f.line <= line
                && f.body.is_some_and(|(_, end)| {
                    model.tokens.get(end.saturating_sub(1)).is_some_and(|t| t.line >= line)
                })
        })
        .max_by_key(|f| f.line)
        .map_or_else(|| format!("{} (file scope)", model.file), |f| f.qual.clone())
}

// ---- pass 1: lockset inference --------------------------------------

#[derive(Debug)]
struct FieldAccess {
    file: String,
    line: usize,
    qual: String,
    locks_held: BTreeSet<String>,
}

fn lockset_pass(ctx: &RaceCtx) -> Vec<FlowFinding> {
    let mut findings = Vec::new();
    for model in ctx.models {
        for st in &model.structs {
            let lock_fields: BTreeSet<String> = st
                .fields
                .iter()
                .filter(|f| crate::analysis::items::type_mentions(&f.ty, &["Mutex", "RwLock"]))
                .map(|f| f.name.clone())
                .collect();
            if lock_fields.is_empty() {
                continue;
            }
            let plain_fields: BTreeSet<String> = st
                .fields
                .iter()
                .filter(|f| {
                    !lock_fields.contains(&f.name)
                        && !type_resolves_to(&f.ty, SELF_SYNC_TYPES, &model.type_aliases)
                })
                .map(|f| f.name.clone())
                .collect();
            if plain_fields.is_empty() {
                continue;
            }

            // Guard-returning helpers of this impl resolve to the lock
            // their body takes first (same trick locks.rs uses).
            let mut guard_fns: BTreeMap<String, String> = BTreeMap::new();
            for f in model.fns.iter().filter(|f| f.impl_type.as_deref() == Some(&st.name)) {
                if !f.ret.contains("Guard") {
                    continue;
                }
                if let Some(lock) =
                    f.body.and_then(|body| first_lock_receiver(&model.tokens, body, &lock_fields))
                {
                    guard_fns.insert(f.name.clone(), lock);
                }
            }

            // Record every plain-field access with the lockset live at
            // that point. `&mut self` methods and constructors own the
            // struct exclusively and are exempt.
            let mut accesses: BTreeMap<String, Vec<FieldAccess>> = BTreeMap::new();
            for f in model.fns.iter().filter(|f| f.impl_type.as_deref() == Some(&st.name)) {
                if skip_fn(f, ctx) || !f.has_self || f.self_mut {
                    continue;
                }
                if f.ret.contains("Self") || f.ret.contains(&st.name) {
                    continue;
                }
                let Some(body) = f.body else { continue };
                record_accesses(
                    model,
                    &f.qual,
                    body,
                    &lock_fields,
                    &guard_fns,
                    &plain_fields,
                    &mut accesses,
                );
            }

            let decl_lines: BTreeMap<&str, usize> =
                st.fields.iter().map(|f| (f.name.as_str(), f.line)).collect();
            findings.extend(judge_field_locksets(&st.name, &model.file, &decl_lines, &accesses));
        }
    }
    findings
}

/// Simplified guard-lifetime walk: tracks `{`/`}` depth, statement
/// temporaries, `drop(g)`, and `let g = self.lock.…` bindings, and logs
/// `self.field` reads/writes of plain fields under the live lockset.
fn record_accesses(
    model: &FileModel,
    qual: &str,
    body: (usize, usize),
    lock_fields: &BTreeSet<String>,
    guard_fns: &BTreeMap<String, String>,
    plain_fields: &BTreeSet<String>,
    accesses: &mut BTreeMap<String, Vec<FieldAccess>>,
) {
    let tokens = &model.tokens;
    let (start, end) = body;
    let end = end.min(tokens.len());
    struct Guard {
        var: Option<String>,
        lock: String,
        depth: usize,
    }
    let mut live: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut current_let: Option<String> = None;
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        match (&t.kind, t.text.as_str()) {
            (TokenKind::Punct, "{") => {
                depth += 1;
                i += 1;
            }
            (TokenKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                live.retain(|g| g.depth <= depth);
                current_let = None;
                i += 1;
            }
            (TokenKind::Punct, ";") => {
                live.retain(|g| g.var.is_some());
                current_let = None;
                i += 1;
            }
            (TokenKind::Ident, "let") => {
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct("="))
                {
                    current_let = Some(tokens[j].text.clone());
                    i = j + 2;
                } else {
                    i += 1;
                }
            }
            (TokenKind::Ident, "drop")
                if at_punct(tokens, i + 1, "(")
                    && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                    && at_punct(tokens, i + 3, ")") =>
            {
                let var = &tokens[i + 2].text;
                live.retain(|g| g.var.as_deref() != Some(var.as_str()));
                i += 4;
            }
            (TokenKind::Punct, ".") => {
                let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
                    i += 1;
                    continue;
                };
                let is_call = at_punct(tokens, i + 2, "(");
                // `self.field` access (a field read keeps going through
                // `.method(` chains; the *field* token is what counts).
                if plain_fields.contains(&name.text)
                    && !is_call
                    && i > start
                    && tokens[i - 1].is_ident("self")
                {
                    accesses.entry(name.text.clone()).or_default().push(FieldAccess {
                        file: model.file.clone(),
                        line: name.line,
                        qual: qual.to_owned(),
                        locks_held: live.iter().map(|g| g.lock.clone()).collect(),
                    });
                    i += 2;
                    continue;
                }
                if !is_call {
                    i += 2;
                    continue;
                }
                let acquired = if crate::locks::ACQUIRE_METHODS.contains(&name.text.as_str()) {
                    receiver_lock(tokens, start, i, lock_fields)
                } else {
                    guard_fns.get(&name.text).cloned()
                };
                if let Some(lock) = acquired {
                    let close = matching_paren(tokens, i + 2, end);
                    let var = if binds_to_let(tokens, close + 1, end) {
                        current_let.clone()
                    } else {
                        None
                    };
                    live.push(Guard { var, lock, depth });
                }
                i += 3;
            }
            _ => i += 1,
        }
    }
}

/// Emits `race-lockset` findings: once a field is guarded anywhere, the
/// majority lock becomes its inferred GuardedBy contract.
fn judge_field_locksets(
    struct_name: &str,
    decl_file: &str,
    decl_lines: &BTreeMap<&str, usize>,
    accesses: &BTreeMap<String, Vec<FieldAccess>>,
) -> Vec<FlowFinding> {
    let mut findings = Vec::new();
    for (field, recs) in accesses {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for rec in recs {
            for lock in &rec.locks_held {
                *counts.entry(lock).or_default() += 1;
            }
        }
        // Never guarded: immutable-after-construction is the common
        // legitimate shape; not a finding.
        let Some((&majority, _)) = counts.iter().max_by_key(|&(name, &n)| (n, name)) else {
            continue;
        };
        let guarded: Vec<&FieldAccess> =
            recs.iter().filter(|r| r.locks_held.contains(majority)).collect();
        for rec in recs.iter().filter(|r| !r.locks_held.contains(majority)) {
            let mut witness: Vec<String> = guarded
                .iter()
                .take(3)
                .map(|g| {
                    format!(
                        "{} ({}:{}) accesses '{field}' holding '{majority}'",
                        g.qual, g.file, g.line
                    )
                })
                .collect();
            if let Some(line) = decl_lines.get(field.as_str()) {
                witness.push(format!("field declared at {decl_file}:{line}"));
            }
            findings.push(FlowFinding {
                violation: Violation {
                    rule: "race-lockset",
                    file: rec.file.clone(),
                    line: rec.line,
                    content: format!(
                        "field '{struct_name}.{field}' accessed without inferred guard \
                         '{majority}' in {}",
                        rec.qual
                    ),
                },
                witness,
            });
        }
    }
    findings
}

// ---- pass 2: atomic-ordering discipline -----------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    Load,
    Store,
    Rmw,
    Cas,
}

#[derive(Debug)]
struct AtomicSite {
    entity: String,
    file: String,
    line: usize,
    qual: String,
    kind: SiteKind,
    orderings: Vec<String>,
    /// `store(0, …)` / `store(false, …)` — a reset, not a publication.
    store_reset: bool,
    /// A non-atomic write (assignment or mutating call) precedes this
    /// site in the same body.
    mutation_before: bool,
}

fn ordering_strength(name: &str) -> u8 {
    match name {
        "Relaxed" => 0,
        "Acquire" | "Release" => 1,
        "AcqRel" => 2,
        _ => 3, // SeqCst
    }
}

fn site_kind(method: &str) -> SiteKind {
    match method {
        "load" => SiteKind::Load,
        "store" => SiteKind::Store,
        "compare_exchange" | "compare_exchange_weak" => SiteKind::Cas,
        _ => SiteKind::Rmw,
    }
}

/// Does `ty` (flattened type text) resolve to one of `names`, possibly
/// through `type` aliases? Bounded chase — alias cycles terminate.
fn type_resolves_to(ty: &str, names: &[&str], aliases: &[(String, String)]) -> bool {
    let mut current = ty.to_owned();
    for _ in 0..4 {
        if crate::analysis::items::type_mentions(&current, names) {
            return true;
        }
        let Some((_, target)) = aliases
            .iter()
            .find(|(alias, _)| crate::analysis::items::type_mentions(&current, &[alias.as_str()]))
        else {
            return false;
        };
        current = target.clone();
    }
    false
}

/// `Ordering::X` arguments inside a token range, in order.
fn orderings_in(tokens: &[Token], start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = start;
    while i + 2 < end {
        if tokens[i].is_ident("Ordering")
            && tokens[i + 1].is_punct("::")
            && tokens[i + 2].kind == TokenKind::Ident
        {
            out.push(tokens[i + 2].text.clone());
            i += 3;
        } else {
            i += 1;
        }
    }
    out
}

/// Is the first argument of a `store(` call a literal reset value?
fn first_arg_is_reset(tokens: &[Token], open: usize, close: usize) -> bool {
    let mut args_end = close;
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().take(close).skip(open + 1) {
        match t.text.as_str() {
            "(" | "[" | "{" if t.kind == TokenKind::Punct => depth += 1,
            ")" | "]" | "}" if t.kind == TokenKind::Punct => depth = depth.saturating_sub(1),
            "," if t.kind == TokenKind::Punct && depth == 0 => {
                args_end = i;
                break;
            }
            _ => {}
        }
    }
    args_end == open + 2
        && (tokens[open + 1].kind == TokenKind::Number && tokens[open + 1].text == "0"
            || tokens[open + 1].is_ident("false"))
}

/// Atomic entities declared in a file: match-name → display name.
/// Fields display as `Struct.field`, statics as their bare name.
fn atomic_entities(model: &FileModel) -> BTreeMap<String, (String, bool)> {
    let mut out = BTreeMap::new();
    for st in &model.structs {
        for f in &st.fields {
            if type_resolves_to(&f.ty, ATOMIC_TYPES, &model.type_aliases) {
                let is_bool = type_resolves_to(&f.ty, &["AtomicBool"], &model.type_aliases);
                out.entry(f.name.clone()).or_insert((format!("{}.{}", st.name, f.name), is_bool));
            }
        }
    }
    for s in &model.statics {
        if type_resolves_to(&s.ty, ATOMIC_TYPES, &model.type_aliases) {
            let is_bool = type_resolves_to(&s.ty, &["AtomicBool"], &model.type_aliases);
            out.insert(s.name.clone(), (s.name.clone(), is_bool));
        }
    }
    out
}

fn atomic_pass(ctx: &RaceCtx) -> Vec<FlowFinding> {
    let mut sites: Vec<AtomicSite> = Vec::new();
    let mut bools: BTreeSet<String> = BTreeSet::new();
    let mut findings = Vec::new();

    for model in ctx.models {
        let entities = atomic_entities(model);
        if entities.is_empty() {
            continue;
        }
        for (display, is_bool) in entities.values() {
            if *is_bool {
                bools.insert(display.clone());
            }
        }
        for f in model.fns.iter().filter(|f| !skip_fn(f, ctx)) {
            let Some(body) = f.body else { continue };
            collect_atomic_sites(model, f, body, &entities, &mut sites);
            findings.extend(spin_lock_scan(model, f, body, &entities));
        }
    }

    // Aggregate per entity, then judge each site against its peers.
    #[derive(Default)]
    struct EntityInfo {
        load_orderings: BTreeSet<String>,
        store_orderings: BTreeSet<String>,
        has_load: bool,
        has_fetch_rmw: bool,
        has_cas: bool,
        all_stores_reset: bool,
        has_store: bool,
    }
    let mut info: BTreeMap<String, EntityInfo> = BTreeMap::new();
    for site in &sites {
        let e = info.entry(site.entity.clone()).or_default();
        match site.kind {
            SiteKind::Load => {
                e.has_load = true;
                e.load_orderings.extend(site.orderings.iter().cloned());
            }
            SiteKind::Store => {
                if !e.has_store {
                    e.all_stores_reset = true;
                }
                e.has_store = true;
                e.all_stores_reset &= site.store_reset;
                e.store_orderings.extend(site.orderings.iter().cloned());
            }
            SiteKind::Rmw => e.has_fetch_rmw = true,
            SiteKind::Cas => e.has_cas = true,
        }
    }
    let role = |entity: &str| -> &'static str {
        let e = &info[entity];
        if e.has_fetch_rmw && !bools.contains(entity) && (!e.has_store || e.all_stores_reset) {
            "counter"
        } else if e.has_cas {
            "latch"
        } else if bools.contains(entity) {
            "flag"
        } else {
            "stamp"
        }
    };

    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut push =
        |file: &str, line: usize, rule: &'static str, content: String, witness: Vec<String>| {
            if seen.insert((file.to_owned(), line, content.clone())) {
                findings.push(FlowFinding {
                    violation: Violation { rule, file: file.to_owned(), line, content },
                    witness,
                });
            }
        };

    for site in &sites {
        let e = &info[&site.entity];
        let entity_role = role(&site.entity);
        let role_note = format!(
            "entity '{}' classified as {entity_role} (loads: {:?}; stores: {:?})",
            site.entity, e.load_orderings, e.store_orderings
        );
        match site.kind {
            SiteKind::Cas if site.orderings.len() >= 2 => {
                let (s, f) = (&site.orderings[0], &site.orderings[1]);
                if ordering_strength(f) > ordering_strength(s) {
                    push(
                        &site.file,
                        site.line,
                        "race-cas-order",
                        format!(
                            "compare_exchange on '{}' in {}: failure ordering {f} stronger \
                             than success {s}",
                            site.entity, site.qual
                        ),
                        vec![role_note.clone()],
                    );
                }
            }
            SiteKind::Store if entity_role != "counter" => {
                let relaxed = site.orderings.first().is_some_and(|o| o == "Relaxed");
                if !relaxed {
                    continue;
                }
                if e.load_orderings.contains("Acquire") || e.load_orderings.contains("SeqCst") {
                    push(
                        &site.file,
                        site.line,
                        "race-atomic-publish",
                        format!(
                            "Relaxed store of '{}' in {} but Acquire/SeqCst loads exist",
                            site.entity, site.qual
                        ),
                        vec![role_note.clone()],
                    );
                } else if !site.store_reset && site.mutation_before && e.has_load {
                    push(
                        &site.file,
                        site.line,
                        "race-atomic-publish",
                        format!(
                            "non-atomic writes published by Relaxed store of '{}' in {}",
                            site.entity, site.qual
                        ),
                        vec![role_note.clone()],
                    );
                }
            }
            SiteKind::Load if entity_role != "counter" => {
                let relaxed = site.orderings.first().is_some_and(|o| o == "Relaxed");
                if relaxed
                    && (e.store_orderings.contains("Release")
                        || e.store_orderings.contains("SeqCst"))
                {
                    push(
                        &site.file,
                        site.line,
                        "race-atomic-publish",
                        format!(
                            "Relaxed load of '{}' in {} but Release/SeqCst stores exist",
                            site.entity, site.qual
                        ),
                        vec![role_note.clone()],
                    );
                }
            }
            _ => {}
        }
    }
    findings
}

/// Records every atomic site in one fn body — method form
/// (`x.store(v, Ordering::…)`) and qualified form
/// (`AtomicBool::store(&X, v, Ordering::…)`, the style failpoint uses
/// to dodge method-name lints).
fn collect_atomic_sites(
    model: &FileModel,
    f: &FnItem,
    body: (usize, usize),
    entities: &BTreeMap<String, (String, bool)>,
    sites: &mut Vec<AtomicSite>,
) {
    let tokens = &model.tokens;
    let (start, end) = body;
    let end = end.min(tokens.len());
    let entity_names: BTreeSet<String> = entities.keys().cloned().collect();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        // Method form: `recv.method(args…)`.
        if t.is_punct(".") {
            if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                if ATOMIC_METHODS.contains(&name.text.as_str()) && at_punct(tokens, i + 2, "(") {
                    if let Some(recv) = receiver_lock(tokens, start, i, &entity_names) {
                        record_site(model, f, body, entities, &recv, &name.text, i + 2, sites);
                    }
                }
            }
            i += 2;
            continue;
        }
        // Qualified form: `AtomicTy::method(&NAME, args…)`.
        if t.kind == TokenKind::Ident
            && type_resolves_to(&t.text, ATOMIC_TYPES, &model.type_aliases)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
        {
            if let Some(name) = tokens.get(i + 2).filter(|t| t.kind == TokenKind::Ident) {
                if ATOMIC_METHODS.contains(&name.text.as_str())
                    && at_punct(tokens, i + 3, "(")
                    && at_punct(tokens, i + 4, "&")
                    && tokens.get(i + 5).is_some_and(|t| entity_names.contains(&t.text))
                {
                    let recv = tokens[i + 5].text.clone();
                    record_site(model, f, body, entities, &recv, &name.text, i + 3, sites);
                }
            }
            i += 3;
            continue;
        }
        i += 1;
    }
}

#[allow(clippy::too_many_arguments)] // internal recorder; the args are the site
fn record_site(
    model: &FileModel,
    f: &FnItem,
    body: (usize, usize),
    entities: &BTreeMap<String, (String, bool)>,
    recv: &str,
    method: &str,
    open: usize,
    sites: &mut Vec<AtomicSite>,
) {
    let tokens = &model.tokens;
    let (start, end) = body;
    let end = end.min(tokens.len());
    let close = matching_paren(tokens, open, end);
    let orderings = orderings_in(tokens, open, close);
    if orderings.is_empty() {
        return; // not an atomic call — receiver-name collision
    }
    let kind = site_kind(method);
    let store_reset = kind == SiteKind::Store && first_arg_is_reset(tokens, open, close);
    sites.push(AtomicSite {
        entity: entities[recv].0.clone(),
        file: model.file.clone(),
        line: tokens[open].line,
        qual: f.qual.clone(),
        kind,
        orderings,
        store_reset,
        mutation_before: has_mutation_before(tokens, start, open),
    });
}

/// Any non-atomic write between `start` and `at`: a compound
/// assignment, a plain `=` that is not a `let` binding, or a mutating
/// method call.
fn has_mutation_before(tokens: &[Token], start: usize, at: usize) -> bool {
    for i in start..at {
        let t = &tokens[i];
        if t.kind != TokenKind::Punct {
            if t.kind == TokenKind::Ident
                && MUTATING_METHODS.contains(&t.text.as_str())
                && i > start
                && tokens[i - 1].is_punct(".")
                && at_punct(tokens, i + 1, "(")
            {
                return true;
            }
            continue;
        }
        if ASSIGN_OPS.contains(&t.text.as_str()) {
            return true;
        }
        if t.text == "=" && i >= 2 {
            let lhs_is_let_binding = tokens[i - 1].kind == TokenKind::Ident
                && (tokens[i - 2].is_ident("let") || tokens[i - 2].is_ident("mut"));
            if !lhs_is_let_binding {
                return true;
            }
        }
    }
    false
}

/// `while <atomic op> { <empty or spin-hint body> }` — an atomic spun
/// as an ad-hoc lock. A body that parks the thread is the sanctioned
/// blocking shape and stays clean.
fn spin_lock_scan(
    model: &FileModel,
    f: &FnItem,
    body: (usize, usize),
    entities: &BTreeMap<String, (String, bool)>,
) -> Vec<FlowFinding> {
    let tokens = &model.tokens;
    let (start, end) = body;
    let end = end.min(tokens.len());
    let mut findings = Vec::new();
    for i in start..end {
        if !tokens[i].is_ident("while") {
            continue;
        }
        // Condition: tokens up to the body `{` at paren depth 0.
        let mut j = i + 1;
        let mut depth = 0usize;
        while j < end {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth = depth.saturating_sub(1);
            } else if t.is_punct("{") && depth == 0 {
                break;
            }
            j += 1;
        }
        if j >= end {
            continue;
        }
        let cond = &tokens[i + 1..j];
        let has_atomic_op = cond.iter().any(|t| {
            t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "compare_exchange" | "compare_exchange_weak" | "swap" | "load"
                )
        });
        let has_ordering = cond.iter().any(|t| t.is_ident("Ordering"));
        let Some(entity_tok) =
            cond.iter().find(|t| t.kind == TokenKind::Ident && entities.contains_key(&t.text))
        else {
            continue;
        };
        if !has_atomic_op || !has_ordering {
            continue;
        }
        let close = crate::analysis::tokens::matching_brace(tokens, j);
        let body_toks = &tokens[j + 1..close.min(end)];
        if body_toks.iter().any(|t| t.is_ident("park")) {
            continue;
        }
        let spins = body_toks.len() <= 1
            || body_toks.iter().any(|t| t.is_ident("spin_loop") || t.is_ident("yield_now"));
        if spins {
            let entity = &entities[&entity_tok.text].0;
            findings.push(FlowFinding {
                violation: Violation {
                    rule: "race-atomic-lock",
                    file: model.file.clone(),
                    line: tokens[i].line,
                    content: format!("atomic '{entity}' spun as an ad-hoc lock in {}", f.qual),
                },
                witness: vec![format!(
                    "busy-wait loop at {}:{} — prefer Mutex/Condvar or thread::park",
                    model.file, tokens[i].line
                )],
            });
        }
    }
    findings
}

// ---- pass 3: unsafe-contract audit ----------------------------------

/// Lines above an `unsafe` item that may carry its SAFETY comment:
/// blocks and impls justify immediately above; `unsafe fn` headers get
/// a wider window for `# Safety` doc sections.
const SAFETY_WINDOW_BLOCK: usize = 3;
const SAFETY_WINDOW_FN: usize = 10;

fn has_safety_comment(src_lines: &[&str], line: usize, window: usize) -> bool {
    let first = line.saturating_sub(window + 1); // 0-based index of window start
    let last = line; // include the `unsafe` line itself (trailing comment)
    src_lines
        .iter()
        .take(last.min(src_lines.len()))
        .skip(first)
        .any(|l| l.contains("SAFETY") || l.contains("# Safety"))
}

/// `from_raw_parts`-family calls whose length operands must trace to a
/// validated bound.
const RAW_PARTS_FNS: &[&str] = &["from_raw_parts", "from_raw_parts_mut"];

fn unsafe_pass(ctx: &RaceCtx) -> Vec<FlowFinding> {
    let mut findings = Vec::new();
    for model in ctx.models {
        let Some(src) = ctx.sources.get(&model.file) else { continue };
        let src_lines: Vec<&str> = src.lines().collect();

        for span in &model.unsafe_spans {
            if span.in_test && !ctx.report_all {
                continue;
            }
            match span.kind {
                UnsafeKind::Block | UnsafeKind::Fn => {
                    let window = if span.kind == UnsafeKind::Fn {
                        SAFETY_WINDOW_FN
                    } else {
                        SAFETY_WINDOW_BLOCK
                    };
                    if !has_safety_comment(&src_lines, span.line, window) {
                        let what =
                            if span.kind == UnsafeKind::Fn { "unsafe fn" } else { "unsafe block" };
                        findings.push(FlowFinding {
                            violation: Violation {
                                rule: "race-unsafe-comment",
                                file: model.file.clone(),
                                line: span.line,
                                content: format!(
                                    "{what} without a SAFETY comment in {}",
                                    enclosing_qual(model, span.line)
                                ),
                            },
                            witness: vec![format!(
                                "unsafe region spans {}:{}-{}",
                                model.file, span.line, span.end_line
                            )],
                        });
                    }
                }
                UnsafeKind::Impl => {
                    let trait_name = span.trait_name.as_deref().unwrap_or("?");
                    if !matches!(trait_name, "Send" | "Sync") {
                        continue;
                    }
                    if !has_safety_comment(&src_lines, span.line, SAFETY_WINDOW_BLOCK) {
                        let for_type = span.for_type.as_deref().unwrap_or("?");
                        findings.push(FlowFinding {
                            violation: Violation {
                                rule: "race-unsafe-impl",
                                file: model.file.clone(),
                                line: span.line,
                                content: format!(
                                    "unsafe impl {trait_name} for {for_type} lacks a SAFETY \
                                     justification comment"
                                ),
                            },
                            witness: vec![format!("declaration at {}:{}", model.file, span.line)],
                        });
                    }
                }
            }
        }

        for f in model.fns.iter().filter(|f| !skip_fn(f, ctx)) {
            let Some(body) = f.body else { continue };
            findings.extend(raw_parts_scan(model, f, body));
        }
    }
    findings
}

/// One top-level argument range `[from, to)` split on depth-0 commas.
fn split_args(tokens: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut depth = 0usize;
    let mut from = open + 1;
    for (i, t) in tokens.iter().enumerate().take(close).skip(open + 1) {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth = depth.saturating_sub(1),
            "," if depth == 0 => {
                args.push((from, i));
                from = i + 1;
            }
            _ => {}
        }
    }
    if from < close {
        args.push((from, close));
    }
    args
}

/// First plain ident of an argument expression (skipping `&`/`*`/`mut`).
fn arg_anchor(tokens: &[Token], range: (usize, usize)) -> Option<String> {
    tokens[range.0..range.1]
        .iter()
        .find(|t| t.kind == TokenKind::Ident && !t.is_ident("mut"))
        .map(|t| t.text.clone())
}

fn raw_parts_scan(model: &FileModel, f: &FnItem, body: (usize, usize)) -> Vec<FlowFinding> {
    let tokens = &model.tokens;
    let (start, end) = body;
    let end = end.min(tokens.len());
    let mut findings = Vec::new();
    for i in start..end {
        if tokens[i].kind != TokenKind::Ident
            || !RAW_PARTS_FNS.contains(&tokens[i].text.as_str())
            || !at_punct(tokens, i + 1, "(")
        {
            continue;
        }
        let close = matching_paren(tokens, i + 1, end);
        let args = split_args(tokens, i + 1, close);
        if args.len() < 2 {
            continue;
        }
        let ptr_anchor = arg_anchor(tokens, args[0]);
        for &len_arg in &args[1..] {
            let text: Vec<&str> =
                tokens[len_arg.0..len_arg.1].iter().map(|t| t.text.as_str()).collect();
            let text = text.join(" ");
            // Literal lengths carry their own bound.
            if len_arg.1 == len_arg.0 + 1 && tokens[len_arg.0].kind == TokenKind::Number {
                continue;
            }
            let anchor = arg_anchor(tokens, len_arg);
            // `region.ptr, region.len`: the pair flows from one
            // receiver whose invariant ties them together.
            if anchor.is_some() && anchor == ptr_anchor {
                continue;
            }
            let validated =
                anchor.as_deref().is_some_and(|a| has_dominating_guard(tokens, start, i, a));
            if !validated {
                findings.push(FlowFinding {
                    violation: Violation {
                        rule: "race-unsafe-bound",
                        file: model.file.clone(),
                        line: tokens[i].line,
                        content: format!(
                            "raw-pointer length '{text}' not traced to a validated bound in {}",
                            f.qual
                        ),
                    },
                    witness: vec![format!(
                        "{} ({}:{}) passes '{text}' to {} unvalidated",
                        f.qual, model.file, tokens[i].line, tokens[i].text
                    )],
                });
            }
        }
    }
    findings
}

/// Does `anchor` appear before `at` in a validating position — next to
/// a comparison operator or flowing through a recognized guard call?
fn has_dominating_guard(tokens: &[Token], start: usize, at: usize, anchor: &str) -> bool {
    for i in start..at {
        if !tokens[i].is_ident(anchor) {
            continue;
        }
        let lo = i.saturating_sub(4).max(start);
        let hi = (i + 5).min(at);
        for j in lo..hi {
            let t = &tokens[j];
            if t.kind == TokenKind::Punct && COMPARISON_OPS.contains(&t.text.as_str()) {
                return true;
            }
            if t.kind == TokenKind::Ident && is_guard_ident(&t.text) && at_punct(tokens, j + 1, "(")
            {
                return true;
            }
        }
    }
    false
}

// ---- task entry -----------------------------------------------------

pub(crate) fn race_task(args: &[String]) -> ExitCode {
    let started = std::time::Instant::now();
    let mut rest = Vec::new();
    let mut self_test = false;
    for arg in args {
        if arg == "--self-test" {
            self_test = true;
        } else {
            rest.push(arg.clone());
        }
    }
    let crate::PassArgs { json, update, baseline_path, root } = match crate::parse_pass_args(&rest)
    {
        Ok(parsed) => parsed,
        Err(message) => return crate::usage_error(&message),
    };
    let root = root.unwrap_or_else(crate::workspace_root);
    if self_test {
        return run_self_test(&root);
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(RACE_BASELINE_FILE));

    let files = analysis::workspace_files(&root);
    let models = analysis::build_models(&root, &files);
    let ctx = RaceCtx::new(&root, &models, false);
    let findings = analyze(&ctx);

    if update {
        let violations: Vec<Violation> = findings.iter().map(|f| f.violation.clone()).collect();
        let rendered =
            baseline::render_titled("twig-race", "cargo xtask race --update-baseline", &violations);
        if let Err(err) = fs::write(&baseline_path, rendered) {
            eprintln!("error: cannot write {}: {err}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "baseline updated: {} finding(s) across {} file(s) recorded in {}",
            findings.len(),
            files.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(parsed) => parsed,
            Err(err) => {
                eprintln!("error: {}: {err}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => Default::default(), // no baseline: everything is new
    };
    let scanned = files.len();
    let (old, fresh) =
        baseline::partition_by(findings, &baseline, |f| baseline::key_of(&f.violation));

    let elapsed_ms = started.elapsed().as_millis();
    if json {
        println!("{}", crate::flow_json_report("twig-race", scanned, &old, &fresh, elapsed_ms));
    } else {
        crate::flow_human_report("twig-race", scanned, &old, &fresh, elapsed_ms);
    }
    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Self-test over `crates/xtask/fixtures/race/`: every `// FLAG: rule`
/// line must be reported with that rule, every `// CLEAN` line must be
/// silent. Fixture files live under a test path, so models are built
/// with the test flag forced off — the self-test must exercise the same
/// reporting rules production code gets.
fn run_self_test(root: &Path) -> ExitCode {
    let fixture_dir = root.join("crates/xtask/fixtures/race");
    let mut files = Vec::new();
    analysis::collect_rs_files(root, &fixture_dir, &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!("error: no fixtures under {}", fixture_dir.display());
        return ExitCode::FAILURE;
    }

    let mut models = Vec::new();
    let mut sources = BTreeMap::new();
    for file in &files {
        match fs::read_to_string(root.join(file)) {
            Ok(src) => {
                let masked = mask_source(&src);
                let test_lines = test_line_mask(&masked);
                models.push(crate::analysis::items::parse_file(
                    file,
                    crate::analysis::tokens::tokenize(&masked),
                    &test_lines,
                    false,
                ));
                sources.insert(file.clone(), src);
            }
            Err(err) => {
                eprintln!("error: cannot read {file}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    let ctx = RaceCtx { models: &models, sources: sources.clone(), report_all: true };
    let findings = analyze(&ctx);

    let mut failures = 0usize;
    let mut checks = 0usize;
    for file in &files {
        let Some(src) = sources.get(file) else { continue };
        for (idx, text) in src.lines().enumerate() {
            let line = idx + 1;
            if let Some(pos) = text.find("/ FLAG:") {
                for rule in text[pos + "/ FLAG:".len()..].split(',') {
                    let rule = rule.trim();
                    checks += 1;
                    let hit = findings.iter().any(|f| {
                        f.violation.rule == rule
                            && f.violation.file == *file
                            && f.violation.line == line
                    });
                    if hit {
                        println!("ok   {file}:{line} [{rule}]");
                    } else {
                        println!("MISS {file}:{line} [{rule}] — known-bad pattern not flagged");
                        failures += 1;
                    }
                }
            } else if text.contains("// CLEAN") {
                checks += 1;
                match findings
                    .iter()
                    .find(|f| f.violation.file == *file && f.violation.line == line)
                {
                    Some(f) => {
                        println!(
                            "FALSE POSITIVE {file}:{line} [{}] — line annotated CLEAN",
                            f.violation.rule
                        );
                        failures += 1;
                    }
                    None => println!("ok   {file}:{line} [clean]"),
                }
            }
        }
    }
    println!(
        "twig-race self-test: {checks} annotation(s) checked, {failures} failure(s), \
         {} finding(s) total",
        findings.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::items::parse_file;
    use crate::analysis::tokens::tokenize;

    fn run(files: &[(&str, &str)]) -> Vec<FlowFinding> {
        let models: Vec<FileModel> = files
            .iter()
            .map(|(file, src)| {
                let masked = mask_source(src);
                let test_lines = test_line_mask(&masked);
                parse_file(file, tokenize(&masked), &test_lines, false)
            })
            .collect();
        let sources: BTreeMap<String, String> =
            files.iter().map(|(f, s)| ((*f).to_owned(), (*s).to_owned())).collect();
        let ctx = RaceCtx { models: &models, sources, report_all: false };
        analyze(&ctx)
    }

    fn rules(findings: &[FlowFinding]) -> Vec<&str> {
        findings.iter().map(|f| f.violation.rule).collect()
    }

    #[test]
    fn relaxed_publication_after_writes_is_flagged() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "
static READY: AtomicBool = AtomicBool::new(false);
struct T { buf: Vec<u8> }
impl T {
    fn publish(&mut self, data: &[u8]) {
        self.buf.extend(data);
        READY.store(true, Ordering::Relaxed);
    }
    fn consume(&self) -> bool { READY.load(Ordering::Relaxed) }
}
",
        )]);
        assert_eq!(rules(&findings), ["race-atomic-publish"], "{findings:?}");
        assert!(findings[0].violation.content.contains("non-atomic writes"), "{findings:?}");
    }

    #[test]
    fn release_publication_is_clean() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "
static READY: AtomicBool = AtomicBool::new(false);
fn publish(buf: &mut Vec<u8>, data: &[u8]) {
    buf.extend(data);
    READY.store(true, Ordering::Release);
}
fn consume() -> bool { READY.load(Ordering::Acquire) }
",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn asymmetric_relaxed_halves_are_flagged() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "
static GEN: AtomicU64 = AtomicU64::new(0);
fn bump(next: u64) { GEN.store(next, Ordering::Release); }
fn peek() -> u64 { GEN.load(Ordering::Relaxed) }
static GATE: AtomicU64 = AtomicU64::new(0);
fn open(v: u64) { GATE.store(v, Ordering::Relaxed); }
fn check() -> u64 { GATE.load(Ordering::Acquire) }
",
        )]);
        assert_eq!(
            rules(&findings),
            ["race-atomic-publish", "race-atomic-publish"],
            "{findings:?}"
        );
        assert!(findings.iter().any(|f| f.violation.content.contains("Relaxed load of 'GEN'")));
        assert!(findings.iter().any(|f| f.violation.content.contains("Relaxed store of 'GATE'")));
    }

    #[test]
    fn counters_are_exempt_from_publish_rules() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "
static HITS: AtomicU64 = AtomicU64::new(0);
fn hit() { HITS.fetch_add(1, Ordering::Relaxed); }
fn total() -> u64 { HITS.load(Ordering::Relaxed) }
fn reset(buf: &mut Vec<u8>) {
    buf.clear();
    HITS.store(0, Ordering::Relaxed);
}
",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn atomic_through_type_alias_is_still_classified() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "
type Flag = AtomicBool;
static LIVE: Flag = Flag::new(false);
fn publish(buf: &mut Vec<u8>) {
    buf.push(1);
    LIVE.store(true, Ordering::Relaxed);
}
fn observe() -> bool { LIVE.load(Ordering::Acquire) }
",
        )]);
        assert_eq!(rules(&findings), ["race-atomic-publish"], "{findings:?}");
        assert!(findings[0].violation.content.contains("'LIVE'"), "{findings:?}");
    }

    #[test]
    fn qualified_atomic_calls_resolve_like_failpoint_style() {
        let findings = run(&[(
            "crates/util/src/a.rs",
            "
static ACTIVE: AtomicBool = AtomicBool::new(false);
fn arm(table: &mut Vec<u32>, p: u32) {
    table.push(p);
    AtomicBool::store(&ACTIVE, true, Ordering::Relaxed);
}
fn armed() -> bool { AtomicBool::load(&ACTIVE, Ordering::Relaxed) }
",
        )]);
        assert_eq!(rules(&findings), ["race-atomic-publish"], "{findings:?}");
    }

    #[test]
    fn receiver_name_collision_without_ordering_is_ignored() {
        // `registry.load(spec)` is a SummaryRegistry method, not an
        // atomic op — no Ordering argument, no site.
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "
struct S { state: AtomicU8, registry: Registry }
impl S {
    fn go(&self, spec: &Spec) { self.registry.load(spec); }
    fn fine(&self) -> u8 { self.state.load(Ordering::Acquire) }
}
",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cas_failure_stronger_than_success_is_flagged() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "
static LATCH: AtomicU8 = AtomicU8::new(0);
fn claim() -> bool {
    LATCH.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Acquire).is_ok()
}
fn claim_ok() -> bool {
    LATCH.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).is_ok()
}
",
        )]);
        assert_eq!(rules(&findings), ["race-cas-order"], "{findings:?}");
    }

    #[test]
    fn atomic_spun_as_lock_is_flagged_but_park_is_clean() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "
static BUSY: AtomicBool = AtomicBool::new(false);
fn acquire() {
    while BUSY.swap(true, Ordering::Acquire) {}
}
fn wait() {
    while BUSY.load(Ordering::Acquire) { std::thread::park(); }
}
",
        )]);
        assert_eq!(rules(&findings), ["race-atomic-lock"], "{findings:?}");
        assert!(findings[0].violation.content.contains("'BUSY'"));
    }

    #[test]
    fn inconsistent_lockset_is_flagged_with_witness() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "
struct Shared { state: Mutex<u32>, hits: u64 }
impl Shared {
    fn guarded(&self) -> u64 {
        let g = self.state.lock().unwrap();
        self.hits
    }
    fn guarded_too(&self) {
        let g = self.state.lock().unwrap();
        let n = self.hits;
    }
    fn unguarded(&self) -> u64 { self.hits }
}
",
        )]);
        assert_eq!(rules(&findings), ["race-lockset"], "{findings:?}");
        assert!(findings[0].violation.content.contains("'Shared.hits'"), "{findings:?}");
        assert!(findings[0].violation.content.contains("'state'"), "{findings:?}");
        assert!(!findings[0].witness.is_empty());
    }

    #[test]
    fn mut_self_and_never_guarded_fields_are_exempt() {
        let findings = run(&[(
            "crates/serve/src/a.rs",
            "
struct Shared { state: Mutex<u32>, hits: u64, tag: u32 }
impl Shared {
    fn guarded(&self) -> u64 {
        let g = self.state.lock().unwrap();
        self.hits
    }
    fn exclusive(&mut self) { self.hits += 1; }
    fn tagged(&self) -> u32 { self.tag }
}
",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let findings = run(&[(
            "crates/flat/src/a.rs",
            "
fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
fn read_ok(p: *const u8) -> u8 {
    // SAFETY: caller validated p against the mapped range.
    unsafe { *p }
}
",
        )]);
        assert_eq!(rules(&findings), ["race-unsafe-comment"], "{findings:?}");
        assert_eq!(findings[0].violation.line, 3);
    }

    #[test]
    fn unsafe_impl_without_justification_is_flagged() {
        let findings = run(&[(
            "crates/flat/src/a.rs",
            "
struct Region { ptr: usize }
unsafe impl Send for Region {}
// SAFETY: the region is read-only after construction.
unsafe impl Sync for Region {}
",
        )]);
        assert_eq!(rules(&findings), ["race-unsafe-impl"], "{findings:?}");
        assert!(findings[0].violation.content.contains("Send for Region"), "{findings:?}");
    }

    #[test]
    fn raw_parts_len_needs_a_dominating_bound() {
        let findings = run(&[(
            "crates/flat/src/a.rs",
            "
fn bad(ptr: *const u8, n: usize) -> &'static [u8] {
    // SAFETY: pointer is valid (but n is unchecked).
    unsafe { slice::from_raw_parts(ptr, n) }
}
fn shared(region: &Region) -> &[u8] {
    // SAFETY: region ties ptr and len together.
    unsafe { slice::from_raw_parts(region.ptr, region.len) }
}
fn guarded(ptr: *const u8, n: usize, cap: usize) -> &'static [u8] {
    assert!(n <= cap);
    // SAFETY: n is bounded by cap above.
    unsafe { slice::from_raw_parts(ptr, n) }
}
fn literal(ptr: *const u8) -> &'static [u8] {
    // SAFETY: fixed-size header.
    unsafe { slice::from_raw_parts(ptr, 16) }
}
",
        )]);
        assert_eq!(rules(&findings), ["race-unsafe-bound"], "{findings:?}");
        assert!(findings[0].violation.content.contains("'n'"), "{findings:?}");
    }
}
