//! Allocation-size sinks, `copy_from_slice`, `<<`, and the hot-path
//! allocation-discipline pass (`hot-alloc`).

/// Deserialization entries sizing allocations straight from the wire.
pub struct Cst;

fn read_u32(bytes: &[u8]) -> u32 {
    bytes.len() as u32
}

impl Cst {
    /// `with_capacity` on an untrusted count: one hostile header byte
    /// requests gigabytes before any validation runs.
    pub fn from_bytes(bytes: &[u8]) -> Vec<u32> {
        let count = read_u32(bytes) as usize;
        Vec::with_capacity(count) // FLAG: taint-alloc
    }

    /// Same sink through `vec![_; n]` and `reserve`.
    pub fn read_from(input: &[u8]) -> Vec<u8> {
        let len = read_u32(input) as usize;
        let mut scratch = vec![0u8; len]; // FLAG: taint-alloc
        scratch.reserve(len); // FLAG: taint-alloc
        scratch
    }

    /// The guarded form: a capped count is a fine allocation size.
    pub fn from_bytes_capped(bytes: &[u8]) -> Vec<u32> {
        let count = read_u32(bytes) as usize;
        let capped = count.min(1 << 20); // CLEAN
        Vec::with_capacity(capped) // CLEAN
    }
}

/// `copy_from_slice` with untrusted bytes panics on any length skew.
pub struct Twig;

impl Twig {
    pub fn parse(bytes: &[u8]) -> [u8; 8] {
        let mut head = [0u8; 8];
        head.copy_from_slice(bytes); // FLAG: taint-copy
        head
    }
}

/// `<<` with an untrusted shift amount is UB-adjacent (overflowing
/// shift); flagged even on lines with float evidence.
pub struct Json;

impl Json {
    pub fn parse(bytes: &[u8]) -> usize {
        let bits = bytes.len();
        1usize << bits // FLAG: taint-arith
    }
}

// ---- hot-path allocation discipline -------------------------------

pub struct PrunedTrie {
    children: Vec<u32>,
}

impl PrunedTrie {
    /// An allocation in a hot entry itself.
    pub fn walk(&self, _label: u32) -> Vec<u32> {
        self.children.clone() // FLAG: hot-alloc
    }
}

impl Cst {
    pub fn estimate_raw(&self, q: usize) -> usize {
        compile_steps(q)
    }
}

/// An allocation one call away from `estimate_raw`.
fn compile_steps(q: usize) -> usize {
    let mut steps = Vec::new(); // FLAG: hot-alloc
    steps.push(q);
    steps.len()
}

/// An allocation reached from the serve request loop.
pub fn handle_connection(id: u64) -> String {
    render_status(id)
}

fn render_status(id: u64) -> String {
    format!("status {id}") // FLAG: hot-alloc
}

/// Allocation in a function no hot entry reaches: not a finding.
pub fn cold_setup() -> Vec<u64> {
    Vec::with_capacity(64) // CLEAN
}
