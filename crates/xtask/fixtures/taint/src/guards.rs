//! Every recognized sanitizer must clean the value it guards — and
//! `debug_assert!` must not, because it compiles out in release builds.

/// `min` caps the value against a trusted bound.
pub fn min_guard(table: &[u64]) -> u64 {
    let raw = std::env::var("TWIG_N").unwrap_or_default();
    let n: usize = raw.parse().unwrap_or(0);
    let capped = n.min(table.len().saturating_sub(1)); // CLEAN
    table[capped] // CLEAN
}

/// `checked_add` yields an already-validated value.
pub fn checked_guard(table: &[u64]) -> u64 {
    let raw = std::env::var("TWIG_N").unwrap_or_default();
    let n: usize = raw.parse().unwrap_or(0);
    let total = n.checked_add(4).unwrap_or(0); // CLEAN
    table.get(total).copied().unwrap_or(0) // CLEAN
}

/// An explicit length comparison sanitizes the compared variable…
pub fn compare_guard(table: &[u64]) -> u64 {
    let raw = std::env::var("TWIG_N").unwrap_or_default();
    let n: usize = raw.parse().unwrap_or(0);
    if n < table.len() {
        return table[n]; // CLEAN
    }
    0
}

/// …but comparing `buffer.len()` must not clean `buffer` itself: the
/// index value is still whatever the peer made it.
pub fn compare_does_not_clean_the_buffer(table: &[u64]) -> u64 {
    let raw = std::env::var("TWIG_N").unwrap_or_default();
    let n: usize = raw.parse().unwrap_or(0);
    if raw.len() > 4 {
        return table[n]; // FLAG: taint-index
    }
    0
}

/// `try_into` is a checked conversion.
pub fn try_into_guard(table: &[u64]) -> u64 {
    let raw = std::env::var("TWIG_WIDE").unwrap_or_default();
    let wide: u64 = raw.parse().unwrap_or(0);
    let at: usize = wide.try_into().unwrap_or(0); // CLEAN
    table.get(at).copied().unwrap_or(0) // CLEAN
}

/// `debug_assert!` is neither a sink (its body folds away in release,
/// so the `+` inside cannot overflow in production)…
pub fn debug_assert_is_not_a_sink(table: &[u64]) -> u64 {
    let raw = std::env::var("TWIG_N").unwrap_or_default();
    let n: usize = raw.parse().unwrap_or(0);
    debug_assert!(n + 1 < table.len()); // CLEAN
    table[n] // FLAG: taint-index
}
