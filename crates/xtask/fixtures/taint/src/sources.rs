//! One case per recognized taint source, plus the interprocedural
//! summary path: a tainted argument flowing into a callee's sink must
//! be reported at the call site.

/// Entry-point params are tainted by definition (`Cst::from_bytes` is a
/// deserialization boundary).
pub struct Cst;

impl Cst {
    pub fn from_bytes(bytes: &[u8]) -> u8 {
        let count = bytes.len();
        bytes[count - 1] // FLAG: taint-index
    }
}

/// `std::env::var` is operator/attacker input in a served process.
pub fn scale_from_env(table: &[u64]) -> u64 {
    let raw = std::env::var("TWIG_SCALE").unwrap_or_default();
    let scale: usize = raw.parse().unwrap_or(0);
    table[scale] // FLAG: taint-index
}

/// `std::fs::read` contents are untrusted bytes.
pub fn first_record(path: &str) -> u8 {
    let bytes = std::fs::read(path).unwrap_or_default();
    let offset = bytes.len() / 2; // CLEAN
    bytes[offset] // FLAG: taint-index
}

/// Match arms bind the scrutinee's taint to their pattern binders.
pub enum Mode {
    Index(usize),
    Other,
}

fn classify(raw: &str) -> Mode {
    if raw.is_empty() {
        Mode::Other
    } else {
        Mode::Index(raw.len())
    }
}

pub fn dispatch(table: &[u64]) -> u64 {
    let raw = std::env::var("TWIG_MODE").unwrap_or_default();
    match classify(&raw) {
        Mode::Index(i) => table[i], // FLAG: taint-index
        Mode::Other => 0,
    }
}

/// A callee whose sink fires only on tainted arguments: nothing is
/// reported here, but the per-function summary records `param 1 ->
/// taint-index`.
fn pick(values: &[u64], at: usize) -> u64 {
    values[at] // CLEAN
}

/// The interprocedural case: the finding lands on the call site that
/// feeds untrusted input into `pick`'s sink parameter.
pub fn lookup(table: &[u64]) -> u64 {
    let raw = std::env::var("TWIG_AT").unwrap_or_default();
    let at: usize = raw.parse().unwrap_or(0);
    pick(table, at) // FLAG: taint-index
}
