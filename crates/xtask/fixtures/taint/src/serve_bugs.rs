//! Reconstructions of the two serving-path bugs PR 3 fixed.
//!
//! Both had the same shape: a value derived from peer-controlled bytes
//! (`head_end` found by scanning the read buffer, `length` from the
//! peer's own `Content-Length` claim) used in slice bounds or length
//! arithmetic without a check. The checked forms that shipped as the
//! fix follow each bug as `CLEAN` counterexamples.

use std::io::Read;
use std::net::TcpStream;

/// Position just past the `\r\n\r\n` head terminator.
fn locate_terminator(buffer: &[u8]) -> usize {
    buffer.len()
}

/// PR 3 bug #1: the head slice `&buffer[..head_end - 4]` trusted the
/// scan result. A response with no terminator made `head_end < 4` and
/// the subtraction wrapped, panicking the worker.
pub fn head_unchecked(stream: &mut TcpStream) -> Vec<u8> {
    let mut buffer = Vec::new();
    stream.read_to_end(&mut buffer).unwrap(); // CLEAN
    let head_end = locate_terminator(&buffer);
    buffer[..head_end - 4].to_vec() // FLAG: taint-index
}

/// The shipped fix: checked slice via `get`, wrap-free subtraction.
pub fn head_checked(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut buffer = Vec::new();
    stream.read_to_end(&mut buffer).ok()?;
    let head_end = locate_terminator(&buffer);
    Some(buffer.get(..head_end.saturating_sub(4))?.to_vec()) // CLEAN
}

/// PR 3 bug #2: `head_end + length` with `length` parsed straight out
/// of the peer's `Content-Length` header. A hostile declaration
/// overflowed the addition, and the body slice indexed with the wrapped
/// bound.
pub fn body_unchecked(stream: &mut TcpStream, length: usize) -> Vec<u8> {
    let mut buffer = Vec::new();
    stream.read_exact(&mut buffer).unwrap();
    let head_end = locate_terminator(&buffer);
    let want = head_end + length; // FLAG: taint-arith
    buffer[head_end..want].to_vec() // FLAG: taint-index
}

/// The shipped fix: `checked_add` for the bound, `get` for the slice.
pub fn body_checked(stream: &mut TcpStream, length: usize) -> Option<Vec<u8>> {
    let mut buffer = Vec::new();
    stream.read_exact(&mut buffer).ok()?;
    let head_end = locate_terminator(&buffer);
    let want = head_end.checked_add(length)?; // CLEAN
    Some(buffer.get(head_end..want)?.to_vec()) // CLEAN
}
