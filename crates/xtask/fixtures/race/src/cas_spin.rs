//! `compare_exchange` ordering discipline (`race-cas-order`) and
//! atomics spun as ad-hoc locks (`race-atomic-lock`).

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

static LATCH: AtomicU8 = AtomicU8::new(0);

pub fn claim_bad() -> bool {
    LATCH.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Acquire).is_ok() // FLAG: race-cas-order
}

pub fn claim_ok() -> bool {
    LATCH.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).is_ok() // CLEAN
}

pub fn claim_weak_bad() -> bool {
    LATCH.compare_exchange_weak(0, 1, Ordering::Relaxed, Ordering::SeqCst).is_ok() // FLAG: race-cas-order
}

// -- spinning on an atomic instead of taking a lock -------------------

static BUSY: AtomicBool = AtomicBool::new(false);

pub fn spin_empty_bad() {
    while BUSY.swap(true, Ordering::Acquire) {} // FLAG: race-atomic-lock
}

pub fn spin_hint_bad() {
    while BUSY.load(Ordering::Acquire) { // FLAG: race-atomic-lock
        std::hint::spin_loop();
    }
}

pub fn wait_parked_ok() {
    while BUSY.load(Ordering::Acquire) { // CLEAN
        std::thread::park();
    }
}

pub fn release() {
    BUSY.store(false, Ordering::Release); // CLEAN
}
