//! Unsafe-contract audit patterns (`race-unsafe-comment`,
//! `race-unsafe-impl`, `race-unsafe-bound`). Spacing is deliberate:
//! a justification comment only covers the item within its window
//! (three lines for blocks and impls, ten for fn doc headers).

use std::slice;

pub struct Region {
    ptr: *const u8,
    len: usize,
}

// The Send assertion below carries no justification within its window.

unsafe impl Send for Region {} // FLAG: race-unsafe-impl

// SAFETY: Region is immutable after construction; concurrent reads
// through `&self` are sound.
unsafe impl Sync for Region {} // CLEAN

pub fn read_unchecked(p: *const u8) -> u8 {
    let q = p;
    unsafe { *q } // FLAG: race-unsafe-comment
}

pub fn read_checked(p: *const u8) -> u8 {
    // SAFETY: caller contract — p points into the mapped region.
    unsafe { *p } // CLEAN
}

// The fn below carries no safety doc section within its window.
// These filler lines keep the previous justification comment outside
// the fn-header window, so the miss is unambiguous: the declaration
// itself is what lacks a written contract, not the file.
//
// (A real offender usually looks exactly like this — an unsafe fn
// added in a hurry with the contract left in the author's head.)

pub unsafe fn byte_at_bad(p: *const u8) -> u8 { // FLAG: race-unsafe-comment
    *p
}

/// Reads one byte from a raw pointer.
///
/// # Safety
///
/// `p` must be valid for reads for the whole call.
pub unsafe fn byte_at(p: *const u8) -> u8 { // CLEAN
    *p
}

// -- raw-pointer/len pairs must trace to a validated bound ------------

pub fn view_bad(ptr: *const u8, n: usize) -> &'static [u8] {
    // SAFETY: the pointer is mapped (but the length is unvalidated).
    unsafe { slice::from_raw_parts(ptr, n) } // FLAG: race-unsafe-bound
}

pub fn view_guarded(ptr: *const u8, n: usize, cap: usize) -> &'static [u8] {
    assert!(n <= cap);
    // SAFETY: n is bounded by cap just above.
    unsafe { slice::from_raw_parts(ptr, n) } // CLEAN
}

pub fn header(ptr: *const u8) -> &'static [u8] {
    // SAFETY: fixed eight-byte header, always mapped.
    unsafe { slice::from_raw_parts(ptr, 8) } // CLEAN
}

impl Region {
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len are tied together by the construction invariant.
        unsafe { slice::from_raw_parts(self.ptr, self.len) } // CLEAN
    }
}
