//! GuardedBy-inference patterns (`race-lockset`).
//!
//! Once a plain field is accessed under a lock anywhere, every access
//! must hold the majority lock. `&mut self` methods own the struct
//! exclusively and are exempt; a field never guarded anywhere is
//! treated as immutable-after-construction and is not a finding.

use std::sync::{Mutex, MutexGuard};

pub struct Shared {
    state: Mutex<u32>,
    hits: u64,
    tag: u32,
}

impl Shared {
    pub fn guarded_read(&self) -> u64 {
        let g = self.state.lock().unwrap();
        self.hits // CLEAN
    }

    pub fn guarded_copy(&self) {
        let g = self.state.lock().unwrap();
        let n = self.hits; // CLEAN
    }

    pub fn unguarded(&self) -> u64 {
        self.hits // FLAG: race-lockset
    }

    pub fn exclusive(&mut self) -> u64 {
        self.hits // CLEAN
    }

    pub fn never_guarded(&self) -> u32 {
        self.tag // CLEAN
    }
}

// -- two locks, inconsistently held -----------------------------------

pub struct Dual {
    a: Mutex<u32>,
    b: Mutex<u32>,
    shared: u64,
}

impl Dual {
    pub fn under_a(&self) -> u64 {
        let g = self.a.lock().unwrap();
        self.shared // CLEAN
    }

    pub fn under_a_again(&self) -> u64 {
        let g = self.a.lock().unwrap();
        self.shared // CLEAN
    }

    pub fn under_b_only(&self) -> u64 {
        let g = self.b.lock().unwrap();
        self.shared // FLAG: race-lockset
    }
}

// -- guard-returning helpers resolve to their lock --------------------

pub struct Helper {
    state: Mutex<u32>,
    total: u64,
}

impl Helper {
    fn lock_state(&self) -> MutexGuard<'_, u32> {
        self.state.lock().unwrap()
    }

    pub fn via_helper(&self) -> u64 {
        let g = self.lock_state();
        self.total // CLEAN
    }

    pub fn bare(&self) -> u64 {
        self.total // FLAG: race-lockset
    }
}
