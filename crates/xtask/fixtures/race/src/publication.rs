//! Atomic publication-latch patterns (`race-atomic-publish`).
//!
//! The first block reconstructs the real bug PR 8 fixed in
//! `crates/util/src/failpoint.rs`: `set()` mutated the point table
//! under its mutex and then armed the `ACTIVE` fast-path flag with a
//! `Relaxed` store, while `hit()` gated on the flag with a `Relaxed`
//! load — a thread observing `true` had no ordering edge to the table
//! writes that preceded the flip.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

// -- the historical failpoint bug, method form ------------------------

static PUB_BAD: AtomicBool = AtomicBool::new(false);
static TABLE: Mutex<Vec<u32>> = Mutex::new(Vec::new());

pub fn arm_bad(point: u32) {
    let mut table = TABLE.lock().unwrap();
    table.push(point);
    PUB_BAD.store(true, Ordering::Relaxed); // FLAG: race-atomic-publish
}

pub fn hit_bad() -> bool {
    PUB_BAD.load(Ordering::Relaxed) // CLEAN
}

// -- the fixed form: Release publish, Acquire consume -----------------

static PUB_OK: AtomicBool = AtomicBool::new(false);

pub fn arm_ok(point: u32) {
    let mut table = TABLE.lock().unwrap();
    table.push(point);
    PUB_OK.store(true, Ordering::Release); // CLEAN
}

pub fn hit_ok() -> bool {
    PUB_OK.load(Ordering::Acquire) // CLEAN
}

// -- qualified-call form (the style failpoint itself uses) ------------

static ACTIVE: AtomicBool = AtomicBool::new(false);

pub fn set_qualified(table: &mut Vec<u32>, point: u32) {
    table.push(point);
    AtomicBool::store(&ACTIVE, true, Ordering::Relaxed); // FLAG: race-atomic-publish
}

pub fn check_qualified() -> bool {
    AtomicBool::load(&ACTIVE, Ordering::Acquire) // CLEAN
}

// -- asymmetric halves of an Acquire/Release pair ---------------------

static GEN: AtomicU64 = AtomicU64::new(0);

pub fn bump_gen(next: u64) {
    GEN.store(next, Ordering::Release); // CLEAN
}

pub fn read_gen_bad() -> u64 {
    GEN.load(Ordering::Relaxed) // FLAG: race-atomic-publish
}

// -- counters are exempt by role --------------------------------------

static HITS: AtomicU64 = AtomicU64::new(0);

pub fn record(buf: &mut Vec<u8>) {
    buf.push(1);
    HITS.fetch_add(1, Ordering::Relaxed); // CLEAN
}

pub fn reset_counter(buf: &mut Vec<u8>) {
    buf.clear();
    HITS.store(0, Ordering::Relaxed); // CLEAN
}

pub fn total() -> u64 {
    HITS.load(Ordering::Relaxed) // CLEAN
}

// -- resolution through a type alias ----------------------------------

type Flag = AtomicBool;
static LIVE: Flag = Flag::new(false);

pub fn alias_publish(buf: &mut Vec<u8>) {
    buf.push(1);
    LIVE.store(true, Ordering::Relaxed); // FLAG: race-atomic-publish
}

pub fn alias_observe() -> bool {
    LIVE.load(Ordering::Acquire) // CLEAN
}
