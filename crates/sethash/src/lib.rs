//! Set hashing (min-hash signatures) for twig selectivity estimation.
//!
//! Implements the signature scheme of Sec. 3.4–3.6 of the paper, following
//! the method of Chen et al. (PODS 2000) which the paper adopts:
//!
//! - a family of `L` independently seeded linear hash functions
//!   ([`HashFamily`]), each mapping `u64` element ids into the full 64-bit
//!   range ("significantly larger than the domain" to keep collisions
//!   negligible),
//! - a [`Signature`] per set: component `i` stores the minimum `h_i(x)`
//!   over the set's elements,
//! - **k-way resemblance** `ρ = |S₁ ∩ … ∩ S_k| / |S₁ ∪ … ∪ S_k|`,
//!   estimated as the fraction of components on which all `k` signatures
//!   agree,
//! - the **intersection-size estimator** ([`estimate_intersection`]): with
//!   the union signature (componentwise min) and the exact size of the
//!   largest set `S_m` (which the CST stores as the presence count),
//!   `|∩| ≈ ρ · |S_m| / F` where `F` estimates `|S_m| / |∪|` as the
//!   fraction of components where `S_m`'s signature equals the union
//!   signature.
//!
//! Signatures are generic over the component width. Full [`Signature<u64>`]
//! values are built during summary construction; [`Signature::truncate`]
//! keeps only the top 32 bits per component for storage
//! ([`CompactSignature`]), halving the space per CST node. Truncation is a
//! monotone map, so componentwise minima (unions) still commute, and a
//! spurious component match requires two distinct minima agreeing on their
//! top 32 bits — negligible against the `O(1/√L)` sampling noise.
//!
//! Signatures are only comparable when produced by the same [`HashFamily`]
//! (same seed, same length); [`HashFamily::seed`] exposes the seed so
//! summaries can record it.

use twig_util::cast::{count_to_f64, size_to_f64};
use twig_util::SplitMix64;

pub mod kernels;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u64 {}
    impl Sealed for u32 {}
}

/// A signature component type: `u64` for freshly built signatures, `u32`
/// for truncated stored ones.
pub trait Component: Copy + Ord + Eq + std::fmt::Debug + sealed::Sealed {
    /// The value stored for the empty set (no minimum observed).
    const EMPTY: Self;
}

impl Component for u64 {
    const EMPTY: Self = u64::MAX;
}

impl Component for u32 {
    const EMPTY: Self = u32::MAX;
}

/// A family of `L` independent linear hash functions over `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashFamily {
    mults: Vec<u64>,
    adds: Vec<u64>,
    seed: u64,
}

impl HashFamily {
    /// Creates a family of `len` hash functions from `seed`.
    ///
    /// # Panics
    /// Panics if `len` is 0.
    pub fn new(len: usize, seed: u64) -> Self {
        assert!(len > 0, "signature length must be positive");
        let mut rng = SplitMix64::new(seed);
        let mults = (0..len).map(|_| rng.next_odd_u64()).collect();
        let adds = (0..len).map(|_| rng.next_u64()).collect();
        Self { mults, adds, seed }
    }

    /// Number of hash functions (= signature length).
    #[inline]
    pub fn len(&self) -> usize {
        self.mults.len()
    }

    /// True when the family is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.mults.is_empty()
    }

    /// The seed this family was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Applies hash function `i` to `element`.
    ///
    /// A wrapping multiply-add followed by a xor-shift finalizer: the
    /// finalizer makes the *minimum* over a set behave like a uniform
    /// order statistic, which plain linear congruences do not.
    #[inline]
    pub fn hash(&self, i: usize, element: u64) -> u64 {
        let mut x = element.wrapping_mul(self.mults[i]).wrapping_add(self.adds[i]);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }
}

/// Storage-friendly signature with 32-bit components.
pub type CompactSignature = Signature<u32>;

/// A min-hash signature of a set of `u64` element ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature<C: Component = u64> {
    components: Vec<C>,
}

impl Signature<u64> {
    /// Builds a signature from an iterator of elements.
    pub fn build(family: &HashFamily, elements: impl IntoIterator<Item = u64>) -> Self {
        let mut sig = Self::empty(family.len());
        for element in elements {
            sig.insert(family, element);
        }
        sig
    }

    /// Folds one element into the signature.
    #[inline]
    pub fn insert(&mut self, family: &HashFamily, element: u64) {
        debug_assert_eq!(self.components.len(), family.len());
        for (i, comp) in self.components.iter_mut().enumerate() {
            let h = family.hash(i, element);
            if h < *comp {
                *comp = h;
            }
        }
    }

    /// Truncates each component to its top 32 bits for storage.
    ///
    /// The map is monotone, so minima (and hence union signatures) are
    /// preserved; `EMPTY` maps to `EMPTY`.
    pub fn truncate(&self) -> CompactSignature {
        Signature { components: self.components.iter().map(|&c| (c >> 32) as u32).collect() }
    }
}

impl<C: Component> Signature<C> {
    /// The signature of the empty set, of length `len`.
    pub fn empty(len: usize) -> Self {
        Self { components: vec![C::EMPTY; len] }
    }

    /// Rebuilds a signature from stored components (inverse of
    /// [`Signature::components`]).
    pub fn from_components(components: Vec<C>) -> Self {
        Self { components }
    }

    /// Signature length.
    #[inline]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the signature has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// True when no element was ever inserted.
    pub fn is_empty_set(&self) -> bool {
        self.components.iter().all(|&c| c == C::EMPTY)
    }

    /// The union signature: componentwise minimum (Step 2 of the paper's
    /// estimation procedure). Signatures must have equal length. The
    /// fold itself is the branch-free [`kernels::union_min_into`].
    pub fn union(signatures: &[&Signature<C>]) -> Signature<C> {
        assert!(!signatures.is_empty(), "union of no signatures");
        let len = signatures[0].len();
        let mut out = Signature::empty(len);
        for sig in signatures {
            assert_eq!(sig.len(), len, "signature length mismatch");
            kernels::union_min_into(&mut out.components, &sig.components);
        }
        out
    }

    /// Estimated k-way resemblance `|∩|/|∪|`: the fraction of components
    /// on which all signatures agree (Step 1 / "set resemblance
    /// estimation" in the paper). Zero if any set is empty. The
    /// agreement count is the branch-free [`kernels::agreement_count`].
    pub fn resemblance(signatures: &[&Signature<C>]) -> f64 {
        assert!(!signatures.is_empty(), "resemblance of no signatures");
        let len = signatures[0].len();
        if signatures.iter().any(|s| s.is_empty_set()) {
            // An empty set makes the intersection empty; resemblance 0
            // (the 0/0 all-empty case is also defined as 0: there is
            // nothing to count).
            return 0.0;
        }
        let first = signatures[0];
        let rest: Vec<&[C]> = signatures[1..]
            .iter()
            .map(|sig| {
                assert_eq!(sig.len(), len, "signature length mismatch");
                sig.components.as_slice()
            })
            .collect();
        let matching = kernels::agreement_count(&first.components, &rest);
        size_to_f64(matching) / size_to_f64(len)
    }

    /// Raw component access (for serialization and size accounting).
    pub fn components(&self) -> &[C] {
        &self.components
    }
}

/// A borrowed view of a stored 32-bit signature: either typed words (the
/// owned [`CompactSignature`] storage) or raw little-endian bytes (the
/// flat on-disk encoding, length a multiple of 4).
///
/// Views exist so the estimation pipeline can run the *same* float code
/// over owned and memory-mapped summaries: agreement counts are exact
/// integers, so `Words` and `Bytes` over the same components produce
/// bit-identical estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigView<'a> {
    /// Typed `u32` components.
    Words(&'a [u32]),
    /// Little-endian `u32` words as raw bytes.
    Bytes(&'a [u8]),
}

impl<'a> SigView<'a> {
    /// Signature length in components.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        match *self {
            SigView::Words(words) => words.len(),
            SigView::Bytes(bytes) => bytes.len() / 4,
        }
    }

    /// True when the view has no components.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Component `i`, or `u32::MAX` (the empty-set sentinel) out of
    /// range — a view over validated sections never goes out of range,
    /// and the sentinel keeps the accessor panic-free regardless.
    #[inline]
    #[must_use]
    pub fn component(&self, i: usize) -> u32 {
        match *self {
            SigView::Words(words) => words.get(i).copied().unwrap_or(u32::MAX),
            SigView::Bytes(bytes) => bytes
                .get(i * 4..i * 4 + 4)
                .and_then(|chunk| chunk.try_into().ok())
                .map_or(u32::MAX, u32::from_le_bytes),
        }
    }

    /// True when no element was ever inserted (every component is the
    /// `EMPTY` sentinel — the view-level [`Signature::is_empty_set`]).
    #[must_use]
    pub fn is_empty_set(&self) -> bool {
        self.components().all(|c| c == u32::MAX)
    }

    /// The typed word slice, when this view has one — the fast path the
    /// agreement loops take so owned summaries keep the branch-free
    /// [`kernels`] codegen.
    #[inline]
    #[must_use]
    pub fn as_words(self) -> Option<&'a [u32]> {
        match self {
            SigView::Words(words) => Some(words),
            SigView::Bytes(_) => None,
        }
    }

    /// Componentwise iterator — the hot-loop accessor. Unlike repeated
    /// [`SigView::component`] calls it dispatches on the representation
    /// once and walks the backing slice without per-index bounds checks.
    #[inline]
    #[must_use]
    pub fn components(self) -> SigComponents<'a> {
        match self {
            SigView::Words(words) => SigComponents::Words(words.iter()),
            SigView::Bytes(bytes) => {
                // `chunks_exact` drops a trailing partial word, matching
                // the `len = bytes/4` truncation above.
                SigComponents::Bytes(bytes.chunks_exact(4))
            }
        }
    }
}

/// Iterator over a [`SigView`]'s `u32` components (see
/// [`SigView::components`]).
#[derive(Debug, Clone)]
pub enum SigComponents<'a> {
    /// Walks typed words.
    Words(core::slice::Iter<'a, u32>),
    /// Walks 4-byte little-endian chunks.
    Bytes(core::slice::ChunksExact<'a, u8>),
}

impl Iterator for SigComponents<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        match self {
            SigComponents::Words(words) => words.next().copied(),
            SigComponents::Bytes(chunks) => {
                chunks.next().map(|chunk| chunk.try_into().map_or(u32::MAX, u32::from_le_bytes))
            }
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SigComponents::Words(words) => words.size_hint(),
            SigComponents::Bytes(chunks) => chunks.size_hint(),
        }
    }
}

/// View-level k-way resemblance: the fraction of components on which
/// every view agrees — bit-identical to [`Signature::resemblance`] over
/// the same components (the agreement count is an exact integer).
/// Returns 0.0 for no views or when any set is empty; allocation- and
/// panic-free (views of mismatched length read as non-agreeing).
#[must_use]
pub fn view_resemblance(signatures: &[SigView<'_>]) -> f64 {
    let Some(first) = signatures.first() else {
        return 0.0;
    };
    if signatures.iter().any(|s| s.is_empty_set()) {
        return 0.0;
    }
    let rest = signatures.get(1..).unwrap_or_default();
    let matching = view_agreement_count(*first, rest);
    size_to_f64(matching) / size_to_f64(first.len())
}

/// Positions where every view in `rest` agrees with `first`. All-word
/// inputs (owned signatures, and the union vectors built here) take the
/// branch-free [`kernels::agreement_count`] path; any byte-backed view
/// falls back to lockstep componentwise iteration, which produces the
/// same exact integer count over equal components.
fn view_agreement_count(first: SigView<'_>, rest: &[SigView<'_>]) -> usize {
    if let Some(first_words) = first.as_words() {
        let rest_words: Option<Vec<&[u32]>> = rest.iter().map(|s| s.as_words()).collect();
        if let Some(rest_words) = rest_words {
            return kernels::agreement_count(first_words, &rest_words);
        }
    }
    let mut rest_iters: Vec<SigComponents<'_>> = rest.iter().map(|s| s.components()).collect();
    let mut matching = 0usize;
    for head in first.components() {
        let mut agree = true;
        for iter in &mut rest_iters {
            agree &= iter.next() == Some(head);
        }
        matching += usize::from(agree);
    }
    matching
}

/// View-level union signature: the componentwise minimum, as owned
/// words — the view counterpart of [`Signature::union`]. Empty input
/// yields an empty vector.
#[must_use]
pub fn view_union(signatures: &[SigView<'_>]) -> Vec<u32> {
    let len = signatures.first().map_or(0, SigView::len);
    let mut out = vec![u32::MAX; len];
    for sig in signatures {
        for (slot, c) in out.iter_mut().zip(sig.components()) {
            *slot = if c < *slot { c } else { *slot };
        }
    }
    out
}

/// View-level [`estimate_union_size`]: identical float-operation
/// sequence (filter, last-max largest set, union resemblance, the same
/// fallback sum), so results are bit-identical over equal components.
/// Returns 0.0 for empty input instead of panicking.
#[must_use]
pub fn view_estimate_union_size(sets: &[(SigView<'_>, u64)]) -> f64 {
    // Mirror the owned filter: drop empty sets, remember the *last*
    // maximal set (`max_by_key` keeps the last maximum) and the
    // fallback sum, all in filter order.
    let mut largest: Option<(SigView<'_>, u64)> = None;
    let mut sum = 0.0;
    for &(sig, size) in sets {
        if size > 0 && !sig.is_empty_set() {
            sum += count_to_f64(size);
            if largest.is_none_or(|(_, best)| size >= best) {
                largest = Some((sig, size));
            }
        }
    }
    let Some((largest_sig, largest_size)) = largest else {
        return 0.0;
    };
    let union = view_union_of_nonempty(sets, largest_sig.len());
    let f = view_resemblance(&[largest_sig, SigView::Words(&union)]);
    if f == 0.0 {
        return sum;
    }
    count_to_f64(largest_size) / f
}

/// View-level [`estimate_intersection`]: identical float-operation
/// sequence (empty-set short-circuit, min-size clamp, last-max largest
/// set, the same degenerate fallback), so results are bit-identical
/// over equal components. Returns 0.0 for empty input instead of
/// panicking.
#[must_use]
pub fn view_estimate_intersection(sets: &[(SigView<'_>, u64)]) -> f64 {
    if sets.is_empty() || sets.iter().any(|&(sig, size)| size == 0 || sig.is_empty_set()) {
        return 0.0;
    }
    let min_size = count_to_f64(sets.iter().map(|&(_, size)| size).min().unwrap_or(0));
    if sets.len() == 1 {
        return count_to_f64(sets.first().map_or(0, |&(_, size)| size));
    }
    let first = sets.first().map_or(SigView::Words(&[]), |&(sig, _)| sig);
    // `first` agreeing with itself is a no-op, so comparing against the
    // full set list matches the per-position all-agree semantics.
    let views: Vec<SigView<'_>> = sets.iter().map(|&(sig, _)| sig).collect();
    let rho_matching = view_agreement_count(first, &views);
    let rho = size_to_f64(rho_matching) / size_to_f64(first.len());
    if rho == 0.0 {
        return 0.0;
    }
    // Largest set gives the most accurate |union| recovery; `max_by_key`
    // keeps the last maximum, so `>=` preserves its tie-breaking.
    let mut largest: Option<(SigView<'_>, u64)> = None;
    for &(sig, size) in sets {
        if largest.is_none_or(|(_, best)| size >= best) {
            largest = Some((sig, size));
        }
    }
    let Some((largest_sig, largest_size)) = largest else {
        return 0.0;
    };
    let union = view_union_of_all(sets, largest_sig.len());
    let f = view_resemblance(&[largest_sig, SigView::Words(&union)]);
    if f == 0.0 {
        return (rho * count_to_f64(largest_size)).min(min_size);
    }
    let union_size = count_to_f64(largest_size) / f;
    (rho * union_size).min(min_size)
}

/// Componentwise minimum over the non-empty sets only (the owned
/// estimator unions the filtered subset).
fn view_union_of_nonempty(sets: &[(SigView<'_>, u64)], len: usize) -> Vec<u32> {
    let mut out = vec![u32::MAX; len];
    for &(sig, size) in sets {
        if size > 0 && !sig.is_empty_set() {
            for (slot, c) in out.iter_mut().zip(sig.components()) {
                *slot = if c < *slot { c } else { *slot };
            }
        }
    }
    out
}

/// Componentwise minimum over every set (the owned intersection
/// estimator unions all signatures — its empty-set short-circuit
/// already ran).
fn view_union_of_all(sets: &[(SigView<'_>, u64)], len: usize) -> Vec<u32> {
    let mut out = vec![u32::MAX; len];
    for &(sig, _) in sets {
        for (slot, c) in out.iter_mut().zip(sig.components()) {
            *slot = if c < *slot { c } else { *slot };
        }
    }
    out
}

/// Estimates `|S₁ ∪ … ∪ S_k|` from signatures plus exact sizes: the
/// largest set's size divided by its resemblance with the union signature
/// (Step 3 of Sec. 3.6). Returns 0 for all-empty input and falls back to
/// the sum of sizes when the resemblance estimate degenerates to 0.
pub fn estimate_union_size<C: Component>(sets: &[(&Signature<C>, u64)]) -> f64 {
    assert!(!sets.is_empty(), "union of no sets");
    let nonempty: Vec<&(&Signature<C>, u64)> =
        sets.iter().filter(|&&(sig, size)| size > 0 && !sig.is_empty_set()).collect();
    if nonempty.is_empty() {
        return 0.0;
    }
    let signatures: Vec<&Signature<C>> = nonempty.iter().map(|&&(sig, _)| sig).collect();
    let union_sig = Signature::union(&signatures);
    let &&(largest_sig, largest_size) =
        nonempty.iter().max_by_key(|&&&(_, size)| size).expect("non-empty");
    let f = Signature::resemblance(&[largest_sig, &union_sig]);
    if f == 0.0 {
        return nonempty.iter().map(|&&(_, size)| count_to_f64(size)).sum();
    }
    count_to_f64(largest_size) / f
}

/// Estimates `|S₁ ∩ … ∩ S_k|` from signatures plus exact set sizes
/// (Steps 1–4 of Sec. 3.6).
///
/// `sets` pairs each signature with the exact cardinality of its set (the
/// CST keeps presence counts, so sizes are known exactly). Returns 0.0
/// when any set is empty. The estimate is clamped to `[0, min(sizes)]` —
/// the intersection can never exceed the smallest set.
pub fn estimate_intersection<C: Component>(sets: &[(&Signature<C>, u64)]) -> f64 {
    assert!(!sets.is_empty(), "intersection of no sets");
    if sets.iter().any(|&(sig, size)| size == 0 || sig.is_empty_set()) {
        return 0.0;
    }
    // `sets` is non-empty (asserted above); `unwrap_or` keeps the path
    // panic-free with a harmless 0-clamp if that ever changes.
    let min_size = count_to_f64(sets.iter().map(|&(_, size)| size).min().unwrap_or(0));
    if sets.len() == 1 {
        return count_to_f64(sets[0].1);
    }
    let signatures: Vec<&Signature<C>> = sets.iter().map(|&(sig, _)| sig).collect();
    let rho = Signature::resemblance(&signatures);
    if rho == 0.0 {
        return 0.0;
    }
    // Largest set gives the most accurate |union| recovery (paper, fn. 6).
    let &(largest_sig, largest_size) =
        sets.iter().max_by_key(|&&(_, size)| size).expect("non-empty");
    let union_sig = Signature::union(&signatures);
    let f = Signature::resemblance(&[largest_sig, &union_sig]);
    if f == 0.0 {
        // Degenerate: the largest set's signature shares nothing with the
        // union signature (cannot happen exactly — S_m ⊆ ∪ — but the
        // estimator can produce it at tiny signature lengths). Fall back
        // to resemblance times the largest size, a lower bound on ρ·|∪|.
        return (rho * count_to_f64(largest_size)).min(min_size);
    }
    let union_size = count_to_f64(largest_size) / f;
    (rho * union_size).min(min_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(len: usize) -> HashFamily {
        HashFamily::new(len, 0xDEAD_BEEF)
    }

    #[test]
    fn identical_sets_have_resemblance_one() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..100);
        let b = Signature::build(&fam, 0..100);
        assert_eq!(Signature::resemblance(&[&a, &b]), 1.0);
    }

    #[test]
    fn disjoint_sets_have_low_resemblance() {
        let fam = family(128);
        let a = Signature::build(&fam, 0..200);
        let b = Signature::build(&fam, 1000..1200);
        assert!(Signature::resemblance(&[&a, &b]) < 0.05);
    }

    #[test]
    fn resemblance_tracks_overlap() {
        // |A∩B| = 50, |A∪B| = 150 → ρ = 1/3.
        let fam = family(512);
        let a = Signature::build(&fam, 0..100);
        let b = Signature::build(&fam, 50..150);
        let rho = Signature::resemblance(&[&a, &b]);
        assert!((rho - 1.0 / 3.0).abs() < 0.08, "rho = {rho}");
    }

    #[test]
    fn three_way_resemblance() {
        // A=0..100, B=50..150, C=75..175: ∩ = 75..100 (25), ∪ = 175.
        let fam = family(512);
        let a = Signature::build(&fam, 0..100);
        let b = Signature::build(&fam, 50..150);
        let c = Signature::build(&fam, 75..175);
        let rho = Signature::resemblance(&[&a, &b, &c]);
        assert!((rho - 25.0 / 175.0).abs() < 0.06, "rho = {rho}");
    }

    #[test]
    fn union_signature_equals_signature_of_union() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..50);
        let b = Signature::build(&fam, 30..90);
        let direct = Signature::build(&fam, 0..90);
        assert_eq!(Signature::union(&[&a, &b]), direct);
    }

    #[test]
    fn truncation_commutes_with_union() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..50);
        let b = Signature::build(&fam, 30..90);
        let union_then_truncate = Signature::union(&[&a, &b]).truncate();
        let truncate_then_union = Signature::union(&[&a.truncate(), &b.truncate()]);
        assert_eq!(union_then_truncate, truncate_then_union);
    }

    #[test]
    fn truncated_resemblance_close_to_full() {
        let fam = family(256);
        let a = Signature::build(&fam, 0..100);
        let b = Signature::build(&fam, 50..150);
        let full = Signature::resemblance(&[&a, &b]);
        let compact = Signature::resemblance(&[&a.truncate(), &b.truncate()]);
        assert!((full - compact).abs() < 0.02, "full {full} vs compact {compact}");
    }

    #[test]
    fn truncated_empty_stays_empty() {
        let sig = Signature::<u64>::empty(8);
        assert!(sig.truncate().is_empty_set());
    }

    #[test]
    fn intersection_estimate_two_way() {
        let fam = family(512);
        let a = Signature::build(&fam, 0..1000);
        let b = Signature::build(&fam, 500..1500);
        let est = estimate_intersection(&[(&a, 1000), (&b, 1000)]);
        assert!((est - 500.0).abs() < 150.0, "est = {est}");
    }

    #[test]
    fn intersection_estimate_compact_matches_full() {
        let fam = family(512);
        let a = Signature::build(&fam, 0..1000);
        let b = Signature::build(&fam, 500..1500);
        let full = estimate_intersection(&[(&a, 1000), (&b, 1000)]);
        let compact = estimate_intersection(&[(&a.truncate(), 1000), (&b.truncate(), 1000)]);
        assert!((full - compact).abs() < 50.0, "full {full} vs compact {compact}");
    }

    #[test]
    fn intersection_estimate_three_way() {
        let fam = family(512);
        let a = Signature::build(&fam, 0..600);
        let b = Signature::build(&fam, 200..800);
        let c = Signature::build(&fam, 400..1000);
        // ∩ = 400..600 = 200
        let est = estimate_intersection(&[(&a, 600), (&b, 600), (&c, 600)]);
        assert!((est - 200.0).abs() < 100.0, "est = {est}");
    }

    #[test]
    fn intersection_of_disjoint_is_near_zero() {
        let fam = family(256);
        let a = Signature::build(&fam, 0..500);
        let b = Signature::build(&fam, 10_000..10_500);
        let est = estimate_intersection(&[(&a, 500), (&b, 500)]);
        assert!(est < 30.0, "est = {est}");
    }

    #[test]
    fn intersection_with_empty_set_is_zero() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..10);
        let empty = Signature::empty(64);
        assert_eq!(estimate_intersection(&[(&a, 10), (&empty, 0)]), 0.0);
    }

    #[test]
    fn intersection_single_set_returns_size() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..10);
        assert_eq!(estimate_intersection(&[(&a, 10)]), 10.0);
    }

    #[test]
    fn intersection_clamped_to_smallest_set() {
        let fam = family(32); // tiny signature → noisy estimate
        let a = Signature::build(&fam, 0..5);
        let b = Signature::build(&fam, 0..1_000);
        let est = estimate_intersection(&[(&a, 5), (&b, 1000)]);
        assert!(est <= 5.0, "est = {est}");
    }

    #[test]
    fn subset_estimation_recovers_subset_size() {
        // A ⊂ B: |∩| = |A|.
        let fam = family(512);
        let a = Signature::build(&fam, 0..100);
        let b = Signature::build(&fam, 0..1_000);
        let est = estimate_intersection(&[(&a, 100), (&b, 1000)]);
        assert!((est - 100.0).abs() < 40.0, "est = {est}");
    }

    #[test]
    fn signatures_deterministic_across_builds() {
        let fam1 = HashFamily::new(64, 7);
        let fam2 = HashFamily::new(64, 7);
        assert_eq!(Signature::build(&fam1, 0..50), Signature::build(&fam2, 0..50));
    }

    #[test]
    fn different_seeds_give_different_signatures() {
        let fam1 = HashFamily::new(64, 7);
        let fam2 = HashFamily::new(64, 8);
        assert_ne!(Signature::build(&fam1, 0..50), Signature::build(&fam2, 0..50));
    }

    #[test]
    fn insertion_order_irrelevant() {
        let fam = family(64);
        let forward = Signature::build(&fam, 0..100);
        let backward = Signature::build(&fam, (0..100).rev());
        assert_eq!(forward, backward);
    }

    #[test]
    fn empty_set_flags() {
        let sig = Signature::<u64>::empty(16);
        assert!(sig.is_empty_set());
        let fam = family(16);
        let nonempty = Signature::build(&fam, [42]);
        assert!(!nonempty.is_empty_set());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_family_rejected() {
        let _ = HashFamily::new(0, 1);
    }

    fn le_bytes_of(sig: &CompactSignature) -> Vec<u8> {
        sig.components().iter().flat_map(|c| c.to_le_bytes()).collect()
    }

    #[test]
    fn view_component_access_words_and_bytes_agree() {
        let fam = family(64);
        let sig = Signature::build(&fam, 0..100).truncate();
        let bytes = le_bytes_of(&sig);
        let words = SigView::Words(sig.components());
        let raw = SigView::Bytes(&bytes);
        assert_eq!(words.len(), 64);
        assert_eq!(raw.len(), 64);
        for i in 0..64 {
            assert_eq!(words.component(i), raw.component(i), "component {i}");
        }
        // Out-of-range reads are the empty sentinel, never a panic.
        assert_eq!(words.component(64), u32::MAX);
        assert_eq!(raw.component(64), u32::MAX);
    }

    #[test]
    fn view_resemblance_bit_identical_to_owned() {
        let fam = family(256);
        let sigs: Vec<CompactSignature> = [0..100u64, 50..150, 75..175]
            .into_iter()
            .map(|r| Signature::build(&fam, r).truncate())
            .collect();
        let owned: Vec<&CompactSignature> = sigs.iter().collect();
        let words: Vec<SigView> = sigs.iter().map(|s| SigView::Words(s.components())).collect();
        let byte_store: Vec<Vec<u8>> = sigs.iter().map(le_bytes_of).collect();
        let bytes: Vec<SigView> = byte_store.iter().map(|b| SigView::Bytes(b)).collect();
        for k in 1..=3 {
            let expect = Signature::resemblance(&owned[..k]);
            assert_eq!(view_resemblance(&words[..k]), expect, "words k={k}");
            assert_eq!(view_resemblance(&bytes[..k]), expect, "bytes k={k}");
        }
        assert_eq!(view_resemblance(&[]), 0.0);
        assert_eq!(view_resemblance(&[SigView::Words(&[u32::MAX; 4])]), 0.0, "empty set");
    }

    #[test]
    fn view_union_matches_owned_union() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..50).truncate();
        let b = Signature::build(&fam, 30..90).truncate();
        let expect = Signature::union(&[&a, &b]);
        let got = view_union(&[SigView::Words(a.components()), SigView::Words(b.components())]);
        assert_eq!(got, expect.components());
    }

    #[test]
    fn view_estimators_bit_identical_to_owned() {
        // Sweep seeds and shapes; ties in set sizes exercise the
        // last-max tie-breaking the owned estimators inherit from
        // `max_by_key`.
        for seed in 0..8u64 {
            let fam = HashFamily::new(96, seed);
            let base = seed * 37;
            let sigs: Vec<CompactSignature> = [
                (base..base + 400, 400u64),
                (base + 100..base + 500, 400),
                (base + 250..base + 900, 650),
            ]
            .iter()
            .map(|(r, _)| Signature::build(&fam, r.clone()).truncate())
            .collect();
            let sizes = [400u64, 400, 650];
            let owned: Vec<(&CompactSignature, u64)> = sigs.iter().zip(sizes).collect();
            let byte_store: Vec<Vec<u8>> = sigs.iter().map(le_bytes_of).collect();
            let words: Vec<(SigView, u64)> =
                sigs.iter().zip(sizes).map(|(s, n)| (SigView::Words(s.components()), n)).collect();
            let bytes: Vec<(SigView, u64)> =
                byte_store.iter().zip(sizes).map(|(b, n)| (SigView::Bytes(b), n)).collect();
            for k in 1..=3 {
                let expect_int = estimate_intersection(&owned[..k]);
                assert_eq!(view_estimate_intersection(&words[..k]), expect_int, "int w k={k}");
                assert_eq!(view_estimate_intersection(&bytes[..k]), expect_int, "int b k={k}");
                let expect_union = estimate_union_size(&owned[..k]);
                assert_eq!(view_estimate_union_size(&words[..k]), expect_union, "uni w k={k}");
                assert_eq!(view_estimate_union_size(&bytes[..k]), expect_union, "uni b k={k}");
            }
        }
        // Degenerate shapes the owned path special-cases.
        let empty = Signature::<u32>::empty(16);
        let fam = family(16);
        let one = Signature::build(&fam, 0..5).truncate();
        assert_eq!(
            view_estimate_intersection(&[
                (SigView::Words(one.components()), 5),
                (SigView::Words(empty.components()), 0),
            ]),
            estimate_intersection(&[(&one, 5), (&empty, 0)]),
        );
        assert_eq!(view_estimate_intersection(&[]), 0.0);
        assert_eq!(view_estimate_union_size(&[]), 0.0);
    }
}
