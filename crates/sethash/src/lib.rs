//! Set hashing (min-hash signatures) for twig selectivity estimation.
//!
//! Implements the signature scheme of Sec. 3.4–3.6 of the paper, following
//! the method of Chen et al. (PODS 2000) which the paper adopts:
//!
//! - a family of `L` independently seeded linear hash functions
//!   ([`HashFamily`]), each mapping `u64` element ids into the full 64-bit
//!   range ("significantly larger than the domain" to keep collisions
//!   negligible),
//! - a [`Signature`] per set: component `i` stores the minimum `h_i(x)`
//!   over the set's elements,
//! - **k-way resemblance** `ρ = |S₁ ∩ … ∩ S_k| / |S₁ ∪ … ∪ S_k|`,
//!   estimated as the fraction of components on which all `k` signatures
//!   agree,
//! - the **intersection-size estimator** ([`estimate_intersection`]): with
//!   the union signature (componentwise min) and the exact size of the
//!   largest set `S_m` (which the CST stores as the presence count),
//!   `|∩| ≈ ρ · |S_m| / F` where `F` estimates `|S_m| / |∪|` as the
//!   fraction of components where `S_m`'s signature equals the union
//!   signature.
//!
//! Signatures are generic over the component width. Full [`Signature<u64>`]
//! values are built during summary construction; [`Signature::truncate`]
//! keeps only the top 32 bits per component for storage
//! ([`CompactSignature`]), halving the space per CST node. Truncation is a
//! monotone map, so componentwise minima (unions) still commute, and a
//! spurious component match requires two distinct minima agreeing on their
//! top 32 bits — negligible against the `O(1/√L)` sampling noise.
//!
//! Signatures are only comparable when produced by the same [`HashFamily`]
//! (same seed, same length); [`HashFamily::seed`] exposes the seed so
//! summaries can record it.

use twig_util::cast::{count_to_f64, size_to_f64};
use twig_util::SplitMix64;

pub mod kernels;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u64 {}
    impl Sealed for u32 {}
}

/// A signature component type: `u64` for freshly built signatures, `u32`
/// for truncated stored ones.
pub trait Component: Copy + Ord + Eq + std::fmt::Debug + sealed::Sealed {
    /// The value stored for the empty set (no minimum observed).
    const EMPTY: Self;
}

impl Component for u64 {
    const EMPTY: Self = u64::MAX;
}

impl Component for u32 {
    const EMPTY: Self = u32::MAX;
}

/// A family of `L` independent linear hash functions over `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashFamily {
    mults: Vec<u64>,
    adds: Vec<u64>,
    seed: u64,
}

impl HashFamily {
    /// Creates a family of `len` hash functions from `seed`.
    ///
    /// # Panics
    /// Panics if `len` is 0.
    pub fn new(len: usize, seed: u64) -> Self {
        assert!(len > 0, "signature length must be positive");
        let mut rng = SplitMix64::new(seed);
        let mults = (0..len).map(|_| rng.next_odd_u64()).collect();
        let adds = (0..len).map(|_| rng.next_u64()).collect();
        Self { mults, adds, seed }
    }

    /// Number of hash functions (= signature length).
    #[inline]
    pub fn len(&self) -> usize {
        self.mults.len()
    }

    /// True when the family is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.mults.is_empty()
    }

    /// The seed this family was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Applies hash function `i` to `element`.
    ///
    /// A wrapping multiply-add followed by a xor-shift finalizer: the
    /// finalizer makes the *minimum* over a set behave like a uniform
    /// order statistic, which plain linear congruences do not.
    #[inline]
    pub fn hash(&self, i: usize, element: u64) -> u64 {
        let mut x = element.wrapping_mul(self.mults[i]).wrapping_add(self.adds[i]);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }
}

/// Storage-friendly signature with 32-bit components.
pub type CompactSignature = Signature<u32>;

/// A min-hash signature of a set of `u64` element ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature<C: Component = u64> {
    components: Vec<C>,
}

impl Signature<u64> {
    /// Builds a signature from an iterator of elements.
    pub fn build(family: &HashFamily, elements: impl IntoIterator<Item = u64>) -> Self {
        let mut sig = Self::empty(family.len());
        for element in elements {
            sig.insert(family, element);
        }
        sig
    }

    /// Folds one element into the signature.
    #[inline]
    pub fn insert(&mut self, family: &HashFamily, element: u64) {
        debug_assert_eq!(self.components.len(), family.len());
        for (i, comp) in self.components.iter_mut().enumerate() {
            let h = family.hash(i, element);
            if h < *comp {
                *comp = h;
            }
        }
    }

    /// Truncates each component to its top 32 bits for storage.
    ///
    /// The map is monotone, so minima (and hence union signatures) are
    /// preserved; `EMPTY` maps to `EMPTY`.
    pub fn truncate(&self) -> CompactSignature {
        Signature { components: self.components.iter().map(|&c| (c >> 32) as u32).collect() }
    }
}

impl<C: Component> Signature<C> {
    /// The signature of the empty set, of length `len`.
    pub fn empty(len: usize) -> Self {
        Self { components: vec![C::EMPTY; len] }
    }

    /// Rebuilds a signature from stored components (inverse of
    /// [`Signature::components`]).
    pub fn from_components(components: Vec<C>) -> Self {
        Self { components }
    }

    /// Signature length.
    #[inline]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True when the signature has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// True when no element was ever inserted.
    pub fn is_empty_set(&self) -> bool {
        self.components.iter().all(|&c| c == C::EMPTY)
    }

    /// The union signature: componentwise minimum (Step 2 of the paper's
    /// estimation procedure). Signatures must have equal length. The
    /// fold itself is the branch-free [`kernels::union_min_into`].
    pub fn union(signatures: &[&Signature<C>]) -> Signature<C> {
        assert!(!signatures.is_empty(), "union of no signatures");
        let len = signatures[0].len();
        let mut out = Signature::empty(len);
        for sig in signatures {
            assert_eq!(sig.len(), len, "signature length mismatch");
            kernels::union_min_into(&mut out.components, &sig.components);
        }
        out
    }

    /// Estimated k-way resemblance `|∩|/|∪|`: the fraction of components
    /// on which all signatures agree (Step 1 / "set resemblance
    /// estimation" in the paper). Zero if any set is empty. The
    /// agreement count is the branch-free [`kernels::agreement_count`].
    pub fn resemblance(signatures: &[&Signature<C>]) -> f64 {
        assert!(!signatures.is_empty(), "resemblance of no signatures");
        let len = signatures[0].len();
        if signatures.iter().any(|s| s.is_empty_set()) {
            // An empty set makes the intersection empty; resemblance 0
            // (the 0/0 all-empty case is also defined as 0: there is
            // nothing to count).
            return 0.0;
        }
        let first = signatures[0];
        let rest: Vec<&[C]> = signatures[1..]
            .iter()
            .map(|sig| {
                assert_eq!(sig.len(), len, "signature length mismatch");
                sig.components.as_slice()
            })
            .collect();
        let matching = kernels::agreement_count(&first.components, &rest);
        size_to_f64(matching) / size_to_f64(len)
    }

    /// Raw component access (for serialization and size accounting).
    pub fn components(&self) -> &[C] {
        &self.components
    }
}

/// Estimates `|S₁ ∪ … ∪ S_k|` from signatures plus exact sizes: the
/// largest set's size divided by its resemblance with the union signature
/// (Step 3 of Sec. 3.6). Returns 0 for all-empty input and falls back to
/// the sum of sizes when the resemblance estimate degenerates to 0.
pub fn estimate_union_size<C: Component>(sets: &[(&Signature<C>, u64)]) -> f64 {
    assert!(!sets.is_empty(), "union of no sets");
    let nonempty: Vec<&(&Signature<C>, u64)> =
        sets.iter().filter(|&&(sig, size)| size > 0 && !sig.is_empty_set()).collect();
    if nonempty.is_empty() {
        return 0.0;
    }
    let signatures: Vec<&Signature<C>> = nonempty.iter().map(|&&(sig, _)| sig).collect();
    let union_sig = Signature::union(&signatures);
    let &&(largest_sig, largest_size) =
        nonempty.iter().max_by_key(|&&&(_, size)| size).expect("non-empty");
    let f = Signature::resemblance(&[largest_sig, &union_sig]);
    if f == 0.0 {
        return nonempty.iter().map(|&&(_, size)| count_to_f64(size)).sum();
    }
    count_to_f64(largest_size) / f
}

/// Estimates `|S₁ ∩ … ∩ S_k|` from signatures plus exact set sizes
/// (Steps 1–4 of Sec. 3.6).
///
/// `sets` pairs each signature with the exact cardinality of its set (the
/// CST keeps presence counts, so sizes are known exactly). Returns 0.0
/// when any set is empty. The estimate is clamped to `[0, min(sizes)]` —
/// the intersection can never exceed the smallest set.
pub fn estimate_intersection<C: Component>(sets: &[(&Signature<C>, u64)]) -> f64 {
    assert!(!sets.is_empty(), "intersection of no sets");
    if sets.iter().any(|&(sig, size)| size == 0 || sig.is_empty_set()) {
        return 0.0;
    }
    // `sets` is non-empty (asserted above); `unwrap_or` keeps the path
    // panic-free with a harmless 0-clamp if that ever changes.
    let min_size = count_to_f64(sets.iter().map(|&(_, size)| size).min().unwrap_or(0));
    if sets.len() == 1 {
        return count_to_f64(sets[0].1);
    }
    let signatures: Vec<&Signature<C>> = sets.iter().map(|&(sig, _)| sig).collect();
    let rho = Signature::resemblance(&signatures);
    if rho == 0.0 {
        return 0.0;
    }
    // Largest set gives the most accurate |union| recovery (paper, fn. 6).
    let &(largest_sig, largest_size) =
        sets.iter().max_by_key(|&&(_, size)| size).expect("non-empty");
    let union_sig = Signature::union(&signatures);
    let f = Signature::resemblance(&[largest_sig, &union_sig]);
    if f == 0.0 {
        // Degenerate: the largest set's signature shares nothing with the
        // union signature (cannot happen exactly — S_m ⊆ ∪ — but the
        // estimator can produce it at tiny signature lengths). Fall back
        // to resemblance times the largest size, a lower bound on ρ·|∪|.
        return (rho * count_to_f64(largest_size)).min(min_size);
    }
    let union_size = count_to_f64(largest_size) / f;
    (rho * union_size).min(min_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family(len: usize) -> HashFamily {
        HashFamily::new(len, 0xDEAD_BEEF)
    }

    #[test]
    fn identical_sets_have_resemblance_one() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..100);
        let b = Signature::build(&fam, 0..100);
        assert_eq!(Signature::resemblance(&[&a, &b]), 1.0);
    }

    #[test]
    fn disjoint_sets_have_low_resemblance() {
        let fam = family(128);
        let a = Signature::build(&fam, 0..200);
        let b = Signature::build(&fam, 1000..1200);
        assert!(Signature::resemblance(&[&a, &b]) < 0.05);
    }

    #[test]
    fn resemblance_tracks_overlap() {
        // |A∩B| = 50, |A∪B| = 150 → ρ = 1/3.
        let fam = family(512);
        let a = Signature::build(&fam, 0..100);
        let b = Signature::build(&fam, 50..150);
        let rho = Signature::resemblance(&[&a, &b]);
        assert!((rho - 1.0 / 3.0).abs() < 0.08, "rho = {rho}");
    }

    #[test]
    fn three_way_resemblance() {
        // A=0..100, B=50..150, C=75..175: ∩ = 75..100 (25), ∪ = 175.
        let fam = family(512);
        let a = Signature::build(&fam, 0..100);
        let b = Signature::build(&fam, 50..150);
        let c = Signature::build(&fam, 75..175);
        let rho = Signature::resemblance(&[&a, &b, &c]);
        assert!((rho - 25.0 / 175.0).abs() < 0.06, "rho = {rho}");
    }

    #[test]
    fn union_signature_equals_signature_of_union() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..50);
        let b = Signature::build(&fam, 30..90);
        let direct = Signature::build(&fam, 0..90);
        assert_eq!(Signature::union(&[&a, &b]), direct);
    }

    #[test]
    fn truncation_commutes_with_union() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..50);
        let b = Signature::build(&fam, 30..90);
        let union_then_truncate = Signature::union(&[&a, &b]).truncate();
        let truncate_then_union = Signature::union(&[&a.truncate(), &b.truncate()]);
        assert_eq!(union_then_truncate, truncate_then_union);
    }

    #[test]
    fn truncated_resemblance_close_to_full() {
        let fam = family(256);
        let a = Signature::build(&fam, 0..100);
        let b = Signature::build(&fam, 50..150);
        let full = Signature::resemblance(&[&a, &b]);
        let compact = Signature::resemblance(&[&a.truncate(), &b.truncate()]);
        assert!((full - compact).abs() < 0.02, "full {full} vs compact {compact}");
    }

    #[test]
    fn truncated_empty_stays_empty() {
        let sig = Signature::<u64>::empty(8);
        assert!(sig.truncate().is_empty_set());
    }

    #[test]
    fn intersection_estimate_two_way() {
        let fam = family(512);
        let a = Signature::build(&fam, 0..1000);
        let b = Signature::build(&fam, 500..1500);
        let est = estimate_intersection(&[(&a, 1000), (&b, 1000)]);
        assert!((est - 500.0).abs() < 150.0, "est = {est}");
    }

    #[test]
    fn intersection_estimate_compact_matches_full() {
        let fam = family(512);
        let a = Signature::build(&fam, 0..1000);
        let b = Signature::build(&fam, 500..1500);
        let full = estimate_intersection(&[(&a, 1000), (&b, 1000)]);
        let compact = estimate_intersection(&[(&a.truncate(), 1000), (&b.truncate(), 1000)]);
        assert!((full - compact).abs() < 50.0, "full {full} vs compact {compact}");
    }

    #[test]
    fn intersection_estimate_three_way() {
        let fam = family(512);
        let a = Signature::build(&fam, 0..600);
        let b = Signature::build(&fam, 200..800);
        let c = Signature::build(&fam, 400..1000);
        // ∩ = 400..600 = 200
        let est = estimate_intersection(&[(&a, 600), (&b, 600), (&c, 600)]);
        assert!((est - 200.0).abs() < 100.0, "est = {est}");
    }

    #[test]
    fn intersection_of_disjoint_is_near_zero() {
        let fam = family(256);
        let a = Signature::build(&fam, 0..500);
        let b = Signature::build(&fam, 10_000..10_500);
        let est = estimate_intersection(&[(&a, 500), (&b, 500)]);
        assert!(est < 30.0, "est = {est}");
    }

    #[test]
    fn intersection_with_empty_set_is_zero() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..10);
        let empty = Signature::empty(64);
        assert_eq!(estimate_intersection(&[(&a, 10), (&empty, 0)]), 0.0);
    }

    #[test]
    fn intersection_single_set_returns_size() {
        let fam = family(64);
        let a = Signature::build(&fam, 0..10);
        assert_eq!(estimate_intersection(&[(&a, 10)]), 10.0);
    }

    #[test]
    fn intersection_clamped_to_smallest_set() {
        let fam = family(32); // tiny signature → noisy estimate
        let a = Signature::build(&fam, 0..5);
        let b = Signature::build(&fam, 0..1_000);
        let est = estimate_intersection(&[(&a, 5), (&b, 1000)]);
        assert!(est <= 5.0, "est = {est}");
    }

    #[test]
    fn subset_estimation_recovers_subset_size() {
        // A ⊂ B: |∩| = |A|.
        let fam = family(512);
        let a = Signature::build(&fam, 0..100);
        let b = Signature::build(&fam, 0..1_000);
        let est = estimate_intersection(&[(&a, 100), (&b, 1000)]);
        assert!((est - 100.0).abs() < 40.0, "est = {est}");
    }

    #[test]
    fn signatures_deterministic_across_builds() {
        let fam1 = HashFamily::new(64, 7);
        let fam2 = HashFamily::new(64, 7);
        assert_eq!(Signature::build(&fam1, 0..50), Signature::build(&fam2, 0..50));
    }

    #[test]
    fn different_seeds_give_different_signatures() {
        let fam1 = HashFamily::new(64, 7);
        let fam2 = HashFamily::new(64, 8);
        assert_ne!(Signature::build(&fam1, 0..50), Signature::build(&fam2, 0..50));
    }

    #[test]
    fn insertion_order_irrelevant() {
        let fam = family(64);
        let forward = Signature::build(&fam, 0..100);
        let backward = Signature::build(&fam, (0..100).rev());
        assert_eq!(forward, backward);
    }

    #[test]
    fn empty_set_flags() {
        let sig = Signature::<u64>::empty(16);
        assert!(sig.is_empty_set());
        let fam = family(16);
        let nonempty = Signature::build(&fam, [42]);
        assert!(!nonempty.is_empty_set());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_family_rejected() {
        let _ = HashFamily::new(0, 1);
    }
}
