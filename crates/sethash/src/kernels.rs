//! Branch-free signature kernels.
//!
//! The two inner loops of every signature operation — componentwise
//! union (minimum) and k-way component agreement — written as
//! straight-line iterator arithmetic with no data-dependent branches, so
//! rustc's autovectorizer can turn them into packed `min`/`cmpeq`
//! instructions over the `u32`/`u64` component arrays. [`Signature`]
//! methods delegate here; the kernels themselves are pure slice
//! functions so they can be tested exhaustively against scalar
//! reference implementations.
//!
//! Length contract: callers pass equal-length slices (the [`Signature`]
//! wrappers assert this). The kernels themselves stop at the shortest
//! slice rather than panicking — they contain no assertion, no indexing,
//! and no division.
//!
//! [`Signature`]: crate::Signature

use crate::Component;

/// Componentwise minimum of `other` into `acc` (the min-hash union
/// fold): `acc[i] = min(acc[i], other[i])`.
///
/// The select compiles to a conditional move / packed-min, not a branch.
#[inline]
pub fn union_min_into<C: Component>(acc: &mut [C], other: &[C]) {
    for (a, &b) in acc.iter_mut().zip(other) {
        *a = if b < *a { b } else { *a };
    }
}

/// Number of positions where `a` and `b` hold equal components — the
/// two-way agreement count behind resemblance estimation.
#[inline]
#[must_use]
pub fn pairwise_agreement<C: Component>(a: &[C], b: &[C]) -> usize {
    a.iter().zip(b).map(|(x, y)| usize::from(x == y)).sum()
}

/// Number of positions where *every* slice in `others` agrees with
/// `first` — the k-way agreement count. With no `others`, every
/// position trivially agrees and the count is `first.len()`.
///
/// The k-way fold keeps a flat agreement mask and combines with bitwise
/// `&`, so each pass over a slice is as vectorizable as the two-way
/// kernel (which the common `others.len() == 1` case dispatches to
/// directly, allocation-free).
#[must_use]
pub fn agreement_count<C: Component>(first: &[C], others: &[&[C]]) -> usize {
    if let [only] = others {
        return pairwise_agreement(first, only);
    }
    let mut mask = vec![true; first.len()];
    for other in others {
        for (m, (x, y)) in mask.iter_mut().zip(first.iter().zip(other.iter())) {
            *m &= x == y;
        }
    }
    mask.iter().map(|&m| usize::from(m)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_util::SplitMix64;

    /// Scalar reference: the obvious branchy union.
    fn union_reference<C: Component>(acc: &[C], other: &[C]) -> Vec<C> {
        acc.iter().zip(other).map(|(&a, &b)| if b < a { b } else { a }).collect()
    }

    /// Scalar reference: the obvious per-position k-way agreement loop.
    fn agreement_reference<C: Component>(first: &[C], others: &[&[C]]) -> usize {
        let mut matching = 0;
        'position: for (i, &x) in first.iter().enumerate() {
            for other in others {
                if other.get(i) != Some(&x) {
                    continue 'position;
                }
            }
            matching += 1;
        }
        matching
    }

    fn random_u64s(rng: &mut SplitMix64, len: usize, spread: u64) -> Vec<u64> {
        (0..len).map(|_| rng.next_u64() % spread).collect()
    }

    #[test]
    fn union_matches_scalar_reference_u64() {
        let mut rng = SplitMix64::new(0x5EED);
        for len in [0usize, 1, 2, 3, 7, 8, 15, 16, 17, 64, 257] {
            for spread in [2u64, 16, u64::MAX] {
                let a = random_u64s(&mut rng, len, spread);
                let b = random_u64s(&mut rng, len, spread);
                let expected = union_reference(&a, &b);
                let mut got = a.clone();
                union_min_into(&mut got, &b);
                assert_eq!(got, expected, "len {len} spread {spread}");
            }
        }
    }

    #[test]
    fn union_matches_scalar_reference_u32() {
        let mut rng = SplitMix64::new(0xCAFE);
        for len in [1usize, 5, 31, 32, 33, 128] {
            let a: Vec<u32> =
                random_u64s(&mut rng, len, 1 << 20).into_iter().map(|v| v as u32).collect();
            let b: Vec<u32> =
                random_u64s(&mut rng, len, 1 << 20).into_iter().map(|v| v as u32).collect();
            let expected = union_reference(&a, &b);
            let mut got = a.clone();
            union_min_into(&mut got, &b);
            assert_eq!(got, expected, "len {len}");
        }
    }

    #[test]
    fn union_exhaustive_small_u32() {
        // Every (a, b) pair over a tiny component domain, every length
        // up to 3: exhaustive, not sampled.
        let domain: Vec<u32> = vec![0, 1, 2, u32::MAX];
        for &a0 in &domain {
            for &b0 in &domain {
                for &a1 in &domain {
                    for &b1 in &domain {
                        let a = [a0, a1];
                        let b = [b0, b1];
                        let expected = union_reference(&a, &b);
                        let mut got = a.to_vec();
                        union_min_into(&mut got, &b);
                        assert_eq!(got, expected);
                    }
                }
            }
        }
    }

    #[test]
    fn agreement_matches_scalar_reference() {
        let mut rng = SplitMix64::new(0xA11CE);
        for len in [0usize, 1, 2, 8, 63, 64, 65, 200] {
            for k in 0usize..5 {
                // A tight spread forces plenty of accidental agreement.
                let first = random_u64s(&mut rng, len, 4);
                let others: Vec<Vec<u64>> = (0..k).map(|_| random_u64s(&mut rng, len, 4)).collect();
                let views: Vec<&[u64]> = others.iter().map(Vec::as_slice).collect();
                assert_eq!(
                    agreement_count(&first, &views),
                    agreement_reference(&first, &views),
                    "len {len} k {k}"
                );
            }
        }
    }

    #[test]
    fn agreement_with_no_others_counts_every_position() {
        let first = [7u64, 8, 9];
        assert_eq!(agreement_count(&first, &[]), 3);
        assert_eq!(agreement_count::<u64>(&[], &[]), 0);
    }

    #[test]
    fn agreement_identical_slices_is_full_length() {
        let a = [3u32, 1, 4, 1, 5];
        assert_eq!(agreement_count(&a, &[&a, &a, &a]), a.len());
        assert_eq!(pairwise_agreement(&a, &a), a.len());
    }
}
