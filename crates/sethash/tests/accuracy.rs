//! Statistical accuracy properties of the min-hash machinery, over
//! randomized set families.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twig_sethash::{estimate_intersection, estimate_union_size, HashFamily, Signature};

/// Builds `k` random subsets of `0..universe`, each kept with its exact
/// contents.
fn random_sets(seed: u64, k: usize, universe: u64) -> Vec<Vec<u64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let density = rng.random_range(0.05..0.6);
            (0..universe).filter(|_| rng.random_bool(density)).collect()
        })
        .collect()
}

fn exact_intersection(sets: &[Vec<u64>]) -> usize {
    sets[0]
        .iter()
        .filter(|x| sets[1..].iter().all(|s| s.contains(x)))
        .count()
}

fn exact_union(sets: &[Vec<u64>]) -> usize {
    let mut all: Vec<u64> = sets.iter().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    all.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Resemblance estimates stay within sampling error of the truth.
    #[test]
    fn resemblance_within_sampling_error(seed in 0u64..10_000, k in 2usize..4) {
        let family = HashFamily::new(256, 0xACC);
        let sets = random_sets(seed, k, 400);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let signatures: Vec<Signature> = sets
            .iter()
            .map(|s| Signature::build(&family, s.iter().copied()))
            .collect();
        let refs: Vec<&Signature> = signatures.iter().collect();
        let estimated = Signature::resemblance(&refs);
        let truth = exact_intersection(&sets) as f64 / exact_union(&sets) as f64;
        // Binomial noise: ~4 standard deviations at L = 256.
        let tolerance = 4.0 * (truth.max(0.02) * 1.02 / 256.0).sqrt();
        prop_assert!(
            (estimated - truth).abs() <= tolerance,
            "estimated {estimated} truth {truth} tolerance {tolerance}"
        );
    }

    /// Intersection estimates track exact intersections.
    #[test]
    fn intersection_tracks_truth(seed in 0u64..10_000, k in 2usize..4) {
        let family = HashFamily::new(256, 0xACC);
        let sets = random_sets(seed, k, 400);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let signatures: Vec<Signature> = sets
            .iter()
            .map(|s| Signature::build(&family, s.iter().copied()))
            .collect();
        let pairs: Vec<(&Signature, u64)> = signatures
            .iter()
            .zip(&sets)
            .map(|(sig, s)| (sig, s.len() as u64))
            .collect();
        let estimated = estimate_intersection(&pairs);
        let truth = exact_intersection(&sets) as f64;
        let union = exact_union(&sets) as f64;
        // Error scales with the union (resemblance noise × |∪|).
        let tolerance = 4.0 * union * (1.0 / 256.0f64).sqrt() + 2.0;
        prop_assert!(
            (estimated - truth).abs() <= tolerance,
            "estimated {estimated} truth {truth} tolerance {tolerance}"
        );
        prop_assert!(estimated <= sets.iter().map(Vec::len).min().unwrap() as f64 + 1e-9);
    }

    /// Union-size estimates track exact unions.
    #[test]
    fn union_tracks_truth(seed in 0u64..10_000, k in 2usize..4) {
        let family = HashFamily::new(256, 0xACC);
        let sets = random_sets(seed, k, 400);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let signatures: Vec<Signature> = sets
            .iter()
            .map(|s| Signature::build(&family, s.iter().copied()))
            .collect();
        let pairs: Vec<(&Signature, u64)> = signatures
            .iter()
            .zip(&sets)
            .map(|(sig, s)| (sig, s.len() as u64))
            .collect();
        let estimated = estimate_union_size(&pairs);
        let truth = exact_union(&sets) as f64;
        prop_assert!(
            (estimated - truth).abs() <= truth * 0.5 + 4.0,
            "estimated {estimated} truth {truth}"
        );
    }

    /// Truncated (u32) signatures agree with full (u64) ones.
    #[test]
    fn truncation_consistent(seed in 0u64..10_000) {
        let family = HashFamily::new(128, 0xACC);
        let sets = random_sets(seed, 2, 300);
        prop_assume!(sets.iter().all(|s| !s.is_empty()));
        let sigs: Vec<Signature> = sets
            .iter()
            .map(|s| Signature::build(&family, s.iter().copied()))
            .collect();
        let full = Signature::resemblance(&[&sigs[0], &sigs[1]]);
        let compact =
            Signature::resemblance(&[&sigs[0].truncate(), &sigs[1].truncate()]);
        // Truncation can only create matches, never destroy them, and
        // spurious matches are (|S|/2^32)-rare.
        prop_assert!(compact >= full);
        prop_assert!(compact - full <= 0.04);
    }
}
