//! Statistical accuracy properties of the min-hash machinery, over
//! randomized set families.
//!
//! Each property runs as a deterministic seed sweep (no external property
//! testing framework — the container builds offline). A failing seed is
//! printed in the assertion message and reproduces exactly.

use twig_sethash::{estimate_intersection, estimate_union_size, HashFamily, Signature};
use twig_util::SplitMix64;

const CASES: u64 = 40;

/// Builds `k` random subsets of `0..universe`, each kept with its exact
/// contents.
fn random_sets(seed: u64, k: usize, universe: u64) -> Vec<Vec<u64>> {
    let mut rng = SplitMix64::new(seed);
    (0..k)
        .map(|_| {
            let density = 0.05 + rng.f64_unit() * 0.55;
            (0..universe).filter(|_| rng.chance(density)).collect()
        })
        .collect()
}

fn exact_intersection(sets: &[Vec<u64>]) -> usize {
    sets[0].iter().filter(|x| sets[1..].iter().all(|s| s.contains(x))).count()
}

fn exact_union(sets: &[Vec<u64>]) -> usize {
    let mut all: Vec<u64> = sets.iter().flatten().copied().collect();
    all.sort_unstable();
    all.dedup();
    all.len()
}

/// Signatures for a family of sets plus their (signature, cardinality)
/// pairing — the shape the estimators consume.
fn signatures(family: &HashFamily, sets: &[Vec<u64>]) -> Vec<Signature> {
    sets.iter().map(|s| Signature::build(family, s.iter().copied())).collect()
}

/// Resemblance estimates stay within sampling error of the truth.
#[test]
fn resemblance_within_sampling_error() {
    let family = HashFamily::new(256, 0xACC);
    for case in 0..CASES {
        let seed = 11 + case * 7919;
        let k = 2 + (case % 2) as usize;
        let sets = random_sets(seed, k, 400);
        if sets.iter().any(Vec::is_empty) {
            continue;
        }
        let sigs = signatures(&family, &sets);
        let refs: Vec<&Signature> = sigs.iter().collect();
        let estimated = Signature::resemblance(&refs);
        let truth = exact_intersection(&sets) as f64 / exact_union(&sets) as f64;
        // Binomial noise: ~4 standard deviations at L = 256.
        let tolerance = 4.0 * (truth.max(0.02) * 1.02 / 256.0).sqrt();
        assert!(
            (estimated - truth).abs() <= tolerance,
            "seed {seed} k {k}: estimated {estimated} truth {truth} tolerance {tolerance}"
        );
    }
}

/// Intersection estimates track exact intersections.
#[test]
fn intersection_tracks_truth() {
    let family = HashFamily::new(256, 0xACC);
    for case in 0..CASES {
        let seed = 1000 + case * 6151;
        let k = 2 + (case % 2) as usize;
        let sets = random_sets(seed, k, 400);
        if sets.iter().any(Vec::is_empty) {
            continue;
        }
        let sigs = signatures(&family, &sets);
        let pairs: Vec<(&Signature, u64)> =
            sigs.iter().zip(&sets).map(|(sig, s)| (sig, s.len() as u64)).collect();
        let estimated = estimate_intersection(&pairs);
        let truth = exact_intersection(&sets) as f64;
        let union = exact_union(&sets) as f64;
        // Error scales with the union (resemblance noise × |∪|).
        let tolerance = 4.0 * union * (1.0 / 256.0f64).sqrt() + 2.0;
        assert!(
            (estimated - truth).abs() <= tolerance,
            "seed {seed} k {k}: estimated {estimated} truth {truth} tolerance {tolerance}"
        );
        let min_len = sets.iter().map(Vec::len).min().expect("k >= 2 sets") as f64;
        assert!(estimated <= min_len + 1e-9, "seed {seed}: {estimated} > {min_len}");
    }
}

/// Union-size estimates track exact unions.
#[test]
fn union_tracks_truth() {
    let family = HashFamily::new(256, 0xACC);
    for case in 0..CASES {
        let seed = 20_000 + case * 4093;
        let k = 2 + (case % 2) as usize;
        let sets = random_sets(seed, k, 400);
        if sets.iter().any(Vec::is_empty) {
            continue;
        }
        let sigs = signatures(&family, &sets);
        let pairs: Vec<(&Signature, u64)> =
            sigs.iter().zip(&sets).map(|(sig, s)| (sig, s.len() as u64)).collect();
        let estimated = estimate_union_size(&pairs);
        let truth = exact_union(&sets) as f64;
        assert!(
            (estimated - truth).abs() <= truth * 0.5 + 4.0,
            "seed {seed} k {k}: estimated {estimated} truth {truth}"
        );
    }
}

/// Truncated (u32) signatures agree with full (u64) ones.
#[test]
fn truncation_consistent() {
    let family = HashFamily::new(128, 0xACC);
    for case in 0..CASES {
        let seed = 300_000 + case * 2801;
        let sets = random_sets(seed, 2, 300);
        if sets.iter().any(Vec::is_empty) {
            continue;
        }
        let sigs = signatures(&family, &sets);
        let full = Signature::resemblance(&[&sigs[0], &sigs[1]]);
        let compact = Signature::resemblance(&[&sigs[0].truncate(), &sigs[1].truncate()]);
        // Truncation can only create matches, never destroy them, and
        // spurious matches are (|S|/2^32)-rare.
        assert!(compact >= full, "seed {seed}: {compact} < {full}");
        assert!(compact - full <= 0.04, "seed {seed}: {compact} vs {full}");
    }
}
