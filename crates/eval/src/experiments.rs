//! One function per paper table/figure (see DESIGN.md §5 for the index).
//!
//! Every function returns plain data rows; the `twig-bench` binaries
//! format and print them. All experiments use occurrence counts as ground
//! truth (the multiset problem, per Sec. 6.1).

use twig_core::{Algorithm, CountKind, SignatureFallback};
use twig_util::stats::log10_floored;

use crate::harness::{Corpus, Scale, Workload};
use crate::metrics::{
    avg_relative_error, avg_relative_squared_error, ratio_buckets, rmse, RatioBuckets,
};

/// One point of an error-vs-space series.
#[derive(Debug, Clone, Copy)]
pub struct SeriesPoint {
    /// Space fraction of the data size (e.g. 0.01 = 1%).
    pub space: f64,
    /// The algorithm measured.
    pub algorithm: Algorithm,
    /// `log10` of the error metric (avg relative squared error unless the
    /// experiment says otherwise).
    pub log10_error: f64,
    /// The raw (non-log) error.
    pub error: f64,
}

fn series_point(space: f64, algorithm: Algorithm, error: f64) -> SeriesPoint {
    SeriesPoint { space, algorithm, log10_error: log10_floored(error), error }
}

/// Fig. 3: Leaf vs pure MO on trivial (single-path) queries, avg relative
/// squared error vs space.
pub fn trivial_experiment(corpus: &Corpus, scale: &Scale, spaces: &[f64]) -> Vec<SeriesPoint> {
    let workload = Workload::trivial(corpus, scale);
    let mut out = Vec::new();
    for &space in spaces {
        let pair = corpus.cst_pair(space, scale);
        for algorithm in [Algorithm::Leaf, Algorithm::PureMo] {
            let estimates = workload.estimate_pair(&pair, algorithm);
            let error = avg_relative_squared_error(&workload.truths, &estimates);
            out.push(series_point(space, algorithm, error));
        }
    }
    out
}

/// Fig. 4: all six algorithms on positive non-trivial queries, avg
/// relative squared error vs space. Also returns the avg relative error
/// series (the paper reports its trends are similar).
pub fn positive_experiment(
    corpus: &Corpus,
    scale: &Scale,
    spaces: &[f64],
) -> (Vec<SeriesPoint>, Vec<SeriesPoint>) {
    let workload = Workload::positive(corpus, scale);
    let mut squared = Vec::new();
    let mut relative = Vec::new();
    for &space in spaces {
        let pair = corpus.cst_pair(space, scale);
        for algorithm in Algorithm::ALL {
            let estimates = workload.estimate_pair(&pair, algorithm);
            squared.push(series_point(
                space,
                algorithm,
                avg_relative_squared_error(&workload.truths, &estimates),
            ));
            relative.push(series_point(
                space,
                algorithm,
                avg_relative_error(&workload.truths, &estimates),
            ));
        }
    }
    (squared, relative)
}

/// Fig. 5(a): estimate/real ratio distribution per algorithm at one space
/// fraction.
pub fn ratio_distribution(
    corpus: &Corpus,
    scale: &Scale,
    space: f64,
) -> Vec<(Algorithm, RatioBuckets)> {
    let workload = Workload::positive(corpus, scale);
    let pair = corpus.cst_pair(space, scale);
    Algorithm::ALL
        .iter()
        .map(|&algorithm| {
            let estimates = workload.estimate_pair(&pair, algorithm);
            (algorithm, ratio_buckets(&workload.truths, &estimates))
        })
        .collect()
}

/// Fig. 5(b): percentage of positive queries that MOSH and MSH decompose
/// into different twiglets, per space fraction.
pub fn parse_divergence(corpus: &Corpus, scale: &Scale, spaces: &[f64]) -> Vec<(f64, f64)> {
    let workload = Workload::positive(corpus, scale);
    spaces
        .iter()
        .map(|&space| {
            let cst = corpus.cst(space, scale);
            let divergent =
                workload.queries.iter().filter(|twig| cst.parses_differently(twig)).count();
            (space, 100.0 * divergent as f64 / workload.queries.len() as f64)
        })
        .collect()
}

/// Fig. 6(a): MOSH vs MSH error restricted to the differently-parsed
/// queries. Returns `None` for a space fraction with no divergent
/// queries.
pub fn divergent_error(
    corpus: &Corpus,
    scale: &Scale,
    spaces: &[f64],
) -> Vec<(f64, Option<(f64, f64)>)> {
    let workload = Workload::positive(corpus, scale);
    spaces
        .iter()
        .map(|&space| {
            let cst = corpus.cst(space, scale);
            let divergent: Vec<usize> = (0..workload.queries.len())
                .filter(|&i| cst.parses_differently(&workload.queries[i]))
                .collect();
            if divergent.is_empty() {
                return (space, None);
            }
            let truths: Vec<u64> = divergent.iter().map(|&i| workload.truths[i]).collect();
            let mosh: Vec<f64> = divergent
                .iter()
                .map(|&i| {
                    cst.estimate(&workload.queries[i], Algorithm::Mosh, CountKind::Occurrence)
                })
                .collect();
            let msh: Vec<f64> = divergent
                .iter()
                .map(|&i| cst.estimate(&workload.queries[i], Algorithm::Msh, CountKind::Occurrence))
                .collect();
            (
                space,
                Some((
                    avg_relative_squared_error(&truths, &mosh),
                    avg_relative_squared_error(&truths, &msh),
                )),
            )
        })
        .collect()
}

/// Fig. 6(b): scale-up — error at a fixed space fraction as the corpus
/// grows. `sizes` are corpus byte sizes ("data extracted from the same
/// source": same generator seed, growing target).
pub fn scaleup(scale: &Scale, sizes: &[usize], space: f64) -> Vec<(usize, Vec<SeriesPoint>)> {
    sizes
        .iter()
        .map(|&bytes| {
            let corpus = Corpus::dblp(bytes, scale.seed);
            let workload = Workload::positive(&corpus, scale);
            let pair = corpus.cst_pair(space, scale);
            let points = Algorithm::ALL
                .iter()
                .map(|&algorithm| {
                    let estimates = workload.estimate_pair(&pair, algorithm);
                    series_point(
                        space,
                        algorithm,
                        avg_relative_squared_error(&workload.truths, &estimates),
                    )
                })
                .collect();
            (bytes, points)
        })
        .collect()
}

/// Fig. 7: negative queries, RMSE vs space, all algorithms. `fallback`
/// selects the below-resolution behavior of the set-hash algorithms: the
/// paper's literal `Zero` reproduces Fig. 7's "MOSH/MSH improve quickly
/// and beat Greedy"; the default conditional-independence mode trades
/// that for robustness on positive queries (see the ablation).
pub fn negative_experiment(
    corpus: &Corpus,
    scale: &Scale,
    spaces: &[f64],
    fallback: SignatureFallback,
) -> Vec<SeriesPoint> {
    let workload = Workload::negative(corpus, scale);
    let mut out = Vec::new();
    for &space in spaces {
        let mut pair = corpus.cst_pair(space, scale);
        pair.sethash.set_fallback(fallback);
        for algorithm in Algorithm::ALL {
            let estimates = workload.estimate_pair(&pair, algorithm);
            let error = rmse(&workload.truths, &estimates);
            out.push(series_point(space, algorithm, error));
        }
    }
    out
}

/// Which workload an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Non-trivial positive queries (2–5 paths).
    Positive,
    /// Trivial single-path queries.
    Trivial,
}

/// Sec. 5 validation: how well does the uniformity assumption estimate
/// occurrence counts? Returns `(avg rel error of presence-as-occurrence,
/// avg rel error of occurrence estimates)` for MOSH — the second should
/// be clearly smaller on multiset data. Note the assumption ignores
/// sibling injectivity (as the paper's does), so it is exact on
/// single-path queries and an upper bound on branching queries whose legs
/// can match the same sibling.
pub fn occurrence_validation(
    corpus: &Corpus,
    scale: &Scale,
    space: f64,
    kind: WorkloadKind,
) -> (f64, f64) {
    let workload = match kind {
        WorkloadKind::Positive => Workload::positive(corpus, scale),
        WorkloadKind::Trivial => Workload::trivial(corpus, scale),
    };
    let cst = corpus.cst(space, scale);
    let presence: Vec<f64> = workload
        .queries
        .iter()
        .map(|twig| cst.estimate(twig, Algorithm::Mosh, CountKind::Presence))
        .collect();
    let occurrence: Vec<f64> = workload
        .queries
        .iter()
        .map(|twig| cst.estimate(twig, Algorithm::Mosh, CountKind::Occurrence))
        .collect();
    (
        avg_relative_error(&workload.truths, &presence),
        avg_relative_error(&workload.truths, &occurrence),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Corpus, Scale) {
        let scale = Scale { dblp_bytes: 150 << 10, queries: 25, ..Scale::small() };
        let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
        (corpus, scale)
    }

    #[test]
    fn trivial_experiment_runs() {
        let (corpus, scale) = fixture();
        let points = trivial_experiment(&corpus, &scale, &[0.02, 0.05]);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.error.is_finite()));
    }

    #[test]
    fn mo_beats_leaf_on_trivial_queries() {
        // The Fig. 3 claim: path information matters. At unit-test corpus
        // sizes the squared metric is dominated by below-threshold
        // queries, so assert on average relative error (the full-scale
        // claim is covered by `full_scale_figures` below and Fig. 3).
        let (corpus, scale) = fixture();
        let workload = Workload::trivial(&corpus, &scale);
        let pair = corpus.cst_pair(0.2, &scale);
        let leaf_rel = crate::metrics::avg_relative_error(
            &workload.truths,
            &workload.estimate_pair(&pair, Algorithm::Leaf),
        );
        let mo_rel = crate::metrics::avg_relative_error(
            &workload.truths,
            &workload.estimate_pair(&pair, Algorithm::PureMo),
        );
        assert!(mo_rel * 2.0 < leaf_rel, "MO rel {mo_rel} should clearly beat Leaf rel {leaf_rel}");
    }

    #[test]
    fn positive_experiment_all_algorithms() {
        let (corpus, scale) = fixture();
        let (squared, relative) = positive_experiment(&corpus, &scale, &[0.03]);
        assert_eq!(squared.len(), 6);
        assert_eq!(relative.len(), 6);
    }

    #[test]
    fn correlation_algorithms_competitive_at_test_scale() {
        // At unit-test corpus sizes the budgets are too starved for the
        // full Fig. 4 separation; assert the robust orderings: Leaf loses
        // to PureMo in relative terms and the set-hash algorithms stay
        // competitive (strict orderings at full scale are covered by
        // `full_scale_figures`).
        let (corpus, scale) = fixture();
        let (_, relative) = positive_experiment(&corpus, &scale, &[0.2]);
        let rel = |a: Algorithm| relative.iter().find(|p| p.algorithm == a).unwrap().error;
        assert!(
            rel(Algorithm::Leaf) > rel(Algorithm::PureMo),
            "Leaf {} should be worst, PureMo {}",
            rel(Algorithm::Leaf),
            rel(Algorithm::PureMo)
        );
        // MOSH vs Leaf is within sampling noise at 150 KiB / 25 queries;
        // require MOSH to stay within 15% of Leaf rather than strictly
        // below it.
        assert!(
            rel(Algorithm::Mosh) < rel(Algorithm::Leaf) * 1.15,
            "Leaf {} vs MOSH {}",
            rel(Algorithm::Leaf),
            rel(Algorithm::Mosh)
        );
        assert!(
            rel(Algorithm::Mosh) < rel(Algorithm::PureMo) * 2.5 + 0.5,
            "MOSH {} should stay in MO's ballpark {}",
            rel(Algorithm::Mosh),
            rel(Algorithm::PureMo)
        );
    }

    /// The headline Fig. 4 claim needs the full-scale corpus; run with
    /// `cargo test --release -p twig-eval -- --ignored`.
    #[test]
    #[ignore = "full-scale experiment; run in release mode"]
    fn full_scale_figures() {
        let scale = Scale { queries: 200, ..Scale::default() };
        let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
        let (squared, relative) = positive_experiment(&corpus, &scale, &[0.1]);
        let sq = |a: Algorithm| squared.iter().find(|p| p.algorithm == a).unwrap().error;
        let rel = |a: Algorithm| relative.iter().find(|p| p.algorithm == a).unwrap().error;
        // Set hashing must beat the independence baselines at generous
        // space, on both metrics.
        assert!(sq(Algorithm::Mosh) < sq(Algorithm::Greedy));
        assert!(sq(Algorithm::Msh) < sq(Algorithm::Greedy));
        assert!(rel(Algorithm::Mosh) < rel(Algorithm::Leaf));
        assert!(rel(Algorithm::Mosh) < rel(Algorithm::Greedy));
    }

    #[test]
    fn ratio_distribution_sums_to_one() {
        let (corpus, scale) = fixture();
        for (_, buckets) in ratio_distribution(&corpus, &scale, 0.05) {
            let total: f64 = buckets.as_percentages().iter().sum();
            assert!((total - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn parse_divergence_bounded() {
        let (corpus, scale) = fixture();
        for (_, pct) in parse_divergence(&corpus, &scale, &[0.02, 0.08]) {
            assert!((0.0..=100.0).contains(&pct));
        }
    }

    #[test]
    fn negative_experiment_runs() {
        let (corpus, scale) = fixture();
        for fallback in [SignatureFallback::ConditionalIndependence, SignatureFallback::Zero] {
            let points = negative_experiment(&corpus, &scale, &[0.05], fallback);
            assert_eq!(points.len(), 6);
            assert!(points.iter().all(|p| p.error.is_finite() && p.error >= 0.0));
        }
    }

    #[test]
    fn occurrence_estimation_validates_uniformity() {
        // A corpus where every record has exactly three authors: the
        // occurrence count of any author-leg query is ~3x its presence
        // count, so the Sec. 5 uniformity correction must clearly beat
        // presence-as-occurrence. (The DBLP fixture at unit-test size is
        // too starved to separate the two.)
        let mut xml = String::from("<lib>");
        for i in 0..3000 {
            let year = 1990 + (i % 5);
            // All three authors share the name pool (distinct within a
            // record), so short value prefixes match several siblings and
            // occurrence counts genuinely exceed presence counts.
            xml.push_str(&format!(
                "<rec><author>A{:02}</author><author>A{:02}</author><author>A{:02}</author><year>{year}</year></rec>",
                i % 30,
                (i + 7) % 30,
                (i + 13) % 30,
            ));
        }
        xml.push_str("</lib>");
        let corpus = Corpus::from_xml("multiset", &xml);
        let scale = Scale { queries: 25, ..Scale::small() };
        let (presence_err, occurrence_err) =
            occurrence_validation(&corpus, &scale, 0.4, WorkloadKind::Trivial);
        assert!(
            occurrence_err < presence_err,
            "occurrence {occurrence_err} vs presence-as-occurrence {presence_err}"
        );
    }
}
