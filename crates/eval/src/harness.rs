//! Corpora, workloads with ground truth, and CST construction helpers.

use twig_core::{Algorithm, CountKind, Cst, CstConfig, SpaceBudget};
use twig_datagen::{
    generate_dblp, generate_sprot, negative_query_candidates, positive_queries, trivial_queries,
    DblpConfig, SprotConfig, WorkloadConfig,
};
use twig_exact::{count_occurrence, count_presence};
use twig_pst::{build_suffix_trie, SuffixTrie, TrieConfig};
use twig_tree::{DataTree, Twig};

/// Experiment scale knobs, so the same experiments run as fast smoke
/// tests and as full figure regenerations.
#[derive(Debug, Clone)]
pub struct Scale {
    /// DBLP-like corpus size in bytes.
    pub dblp_bytes: usize,
    /// SWISS-PROT-like corpus size in bytes.
    pub sprot_bytes: usize,
    /// Queries per workload (the paper uses 1000).
    pub queries: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Signature length for CSTs.
    pub signature_len: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            dblp_bytes: 8 << 20,
            sprot_bytes: 4 << 20,
            queries: 1000,
            seed: 20010402, // ICDE 2001
            signature_len: 32,
        }
    }
}

impl Scale {
    /// A fast scale for unit tests and smoke runs.
    pub fn small() -> Self {
        Self {
            dblp_bytes: 200 << 10,
            sprot_bytes: 150 << 10,
            queries: 60,
            seed: 20010402,
            signature_len: 32,
        }
    }

    /// Reads scale knobs from the environment:
    /// `TWIG_SCALE=small|full` (default full), then optional overrides
    /// `TWIG_QUERIES`, `TWIG_DBLP_MB`, `TWIG_SPROT_MB`, `TWIG_SIG`.
    pub fn from_env() -> Self {
        let mut scale = match std::env::var("TWIG_SCALE").as_deref() {
            Ok("small") => Self::small(),
            _ => Self::default(),
        };
        if let Ok(queries) = std::env::var("TWIG_QUERIES") {
            scale.queries = queries.parse().expect("TWIG_QUERIES must be a number");
        }
        if let Ok(mb) = std::env::var("TWIG_DBLP_MB") {
            let mb: f64 = mb.parse().expect("TWIG_DBLP_MB must be a number");
            scale.dblp_bytes = (mb * 1048576.0) as usize;
        }
        if let Ok(mb) = std::env::var("TWIG_SPROT_MB") {
            let mb: f64 = mb.parse().expect("TWIG_SPROT_MB must be a number");
            scale.sprot_bytes = (mb * 1048576.0) as usize;
        }
        if let Ok(sig) = std::env::var("TWIG_SIG") {
            scale.signature_len = sig.parse().expect("TWIG_SIG must be a number");
        }
        scale
    }
}

/// A corpus: the parsed data tree plus its full (unpruned) suffix trie,
/// shared across all space budgets of an experiment.
pub struct Corpus {
    /// Display name ("dblp" / "sprot").
    pub name: String,
    /// The parsed data tree.
    pub tree: DataTree,
    /// The full suffix trie (prune with a budget to get a CST).
    pub trie: SuffixTrie,
}

impl Corpus {
    /// Generates and parses the DBLP-like corpus.
    pub fn dblp(bytes: usize, seed: u64) -> Self {
        let xml = generate_dblp(&DblpConfig { target_bytes: bytes, seed, ..DblpConfig::default() });
        Self::from_xml("dblp", &xml)
    }

    /// Generates and parses the SWISS-PROT-like corpus.
    pub fn sprot(bytes: usize, seed: u64) -> Self {
        let xml = generate_sprot(&SprotConfig { target_bytes: bytes, seed });
        Self::from_xml("sprot", &xml)
    }

    /// Parses an arbitrary XML corpus.
    pub fn from_xml(name: &str, xml: &str) -> Self {
        let tree = DataTree::from_xml(xml).expect("generated XML is well-formed");
        let trie = build_suffix_trie(&tree, &TrieConfig::default());
        Self { name: name.to_owned(), tree, trie }
    }

    /// Builds a signature-carrying CST at `fraction` of the corpus source
    /// size.
    pub fn cst(&self, fraction: f64, scale: &Scale) -> Cst {
        self.cst_with(fraction, scale, true)
    }

    /// Builds both summaries for one space budget: the signature-free one
    /// the correlation-less baselines use, and the signature-carrying one
    /// for MOSH/PMOSH/MSH (each algorithm gets the same byte budget spent
    /// on its own summary, as in the paper's figures).
    pub fn cst_pair(&self, fraction: f64, scale: &Scale) -> CstPair {
        CstPair {
            plain: self.cst_with(fraction, scale, false),
            sethash: self.cst_with(fraction, scale, true),
        }
    }

    fn cst_with(&self, fraction: f64, scale: &Scale, with_signatures: bool) -> Cst {
        let config = CstConfig {
            budget: SpaceBudget::Fraction(fraction),
            signature_len: scale.signature_len,
            seed: scale.seed ^ 0x5E7_4A54,
            with_signatures,
            ..CstConfig::default()
        };
        Cst::from_trie(&self.tree, &self.trie, &config).expect("CST config is valid")
    }
}

/// The two summaries built for one space budget.
pub struct CstPair {
    /// Signature-free summary (Leaf, Greedy, pure MO).
    pub plain: Cst,
    /// Signature-carrying summary (MOSH, PMOSH, MSH).
    pub sethash: Cst,
}

impl CstPair {
    /// The summary `algorithm` runs against.
    pub fn for_algorithm(&self, algorithm: Algorithm) -> &Cst {
        if algorithm.uses_signatures() {
            &self.sethash
        } else {
            &self.plain
        }
    }
}

/// A query workload with exact ground-truth counts.
pub struct Workload {
    /// The queries.
    pub queries: Vec<Twig>,
    /// Exact occurrence counts (the multiset problem's ground truth).
    pub truths: Vec<u64>,
}

impl Workload {
    /// Positive non-trivial queries with occurrence ground truths
    /// (queries whose exact occurrence count is 0 — possible when value
    /// prefixes collapse — are resampled away by filtering).
    pub fn positive(corpus: &Corpus, scale: &Scale) -> Self {
        let cfg = WorkloadConfig {
            count: scale.queries + scale.queries / 5,
            seed: scale.seed,
            ..WorkloadConfig::default()
        };
        let mut queries = positive_queries(&corpus.tree, &cfg);
        let mut truths: Vec<u64> = Vec::with_capacity(queries.len());
        let mut kept: Vec<Twig> = Vec::with_capacity(scale.queries);
        for twig in queries.drain(..) {
            if kept.len() == scale.queries {
                break;
            }
            let truth = count_occurrence(&corpus.tree, &twig);
            if truth > 0 {
                kept.push(twig);
                truths.push(truth);
            }
        }
        assert!(
            kept.len() >= scale.queries * 9 / 10,
            "too few positive queries survived: {}",
            kept.len()
        );
        Self { queries: kept, truths }
    }

    /// Trivial (single-path) queries with occurrence ground truths.
    pub fn trivial(corpus: &Corpus, scale: &Scale) -> Self {
        let cfg = WorkloadConfig {
            count: scale.queries,
            seed: scale.seed.wrapping_add(1),
            ..WorkloadConfig::default()
        };
        let queries = trivial_queries(&corpus.tree, &cfg);
        let truths = queries.iter().map(|twig| count_occurrence(&corpus.tree, twig)).collect();
        Self { queries, truths }
    }

    /// Negative queries: glued candidates filtered to exact count 0.
    pub fn negative(corpus: &Corpus, scale: &Scale) -> Self {
        let cfg = WorkloadConfig {
            count: scale.queries * 3,
            seed: scale.seed.wrapping_add(2),
            ..WorkloadConfig::default()
        };
        let candidates = negative_query_candidates(&corpus.tree, &cfg);
        let queries: Vec<Twig> = candidates
            .into_iter()
            .filter(|twig| count_presence(&corpus.tree, twig) == 0)
            .take(scale.queries)
            .collect();
        assert!(queries.len() >= scale.queries / 2, "too few negative queries: {}", queries.len());
        let truths = vec![0u64; queries.len()];
        Self { queries, truths }
    }

    /// Runs one algorithm over the whole workload against one summary.
    pub fn estimate_all(&self, cst: &Cst, algorithm: Algorithm) -> Vec<f64> {
        self.queries
            .iter()
            .map(|twig| cst.estimate(twig, algorithm, CountKind::Occurrence))
            .collect()
    }

    /// Runs one algorithm against its appropriate summary in a pair.
    pub fn estimate_pair(&self, pair: &CstPair, algorithm: Algorithm) -> Vec<f64> {
        self.estimate_all(pair.for_algorithm(algorithm), algorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale { dblp_bytes: 120 << 10, queries: 20, ..Scale::small() }
    }

    #[test]
    fn corpus_builds_with_trie() {
        let scale = tiny_scale();
        let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
        assert!(corpus.tree.element_count() > 500);
        assert!(corpus.trie.node_count() > 1000);
    }

    #[test]
    fn cst_fraction_budgets_scale() {
        let scale = tiny_scale();
        let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
        let small = corpus.cst(0.005, &scale);
        let large = corpus.cst(0.05, &scale);
        assert!(small.node_count() < large.node_count());
        assert!(small.size_bytes() <= (corpus.tree.source_bytes() as f64 * 0.005) as usize);
    }

    #[test]
    fn positive_workload_has_truths() {
        let scale = tiny_scale();
        let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
        let workload = Workload::positive(&corpus, &scale);
        assert_eq!(workload.queries.len(), workload.truths.len());
        assert!(workload.truths.iter().all(|&t| t > 0));
    }

    #[test]
    fn negative_workload_all_zero() {
        let scale = tiny_scale();
        let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
        let workload = Workload::negative(&corpus, &scale);
        for twig in &workload.queries {
            assert_eq!(count_presence(&corpus.tree, twig), 0, "{twig}");
        }
    }

    #[test]
    fn estimates_cover_workload() {
        let scale = tiny_scale();
        let corpus = Corpus::dblp(scale.dblp_bytes, scale.seed);
        let workload = Workload::positive(&corpus, &scale);
        let cst = corpus.cst(0.05, &scale);
        let estimates = workload.estimate_all(&cst, Algorithm::Mosh);
        assert_eq!(estimates.len(), workload.queries.len());
        assert!(estimates.iter().all(|e| e.is_finite() && *e >= 0.0));
    }
}
