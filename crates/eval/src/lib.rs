//! Error metrics and the experiment harness that regenerates the paper's
//! tables and figures (Sec. 6).
//!
//! - [`metrics`]: average relative error, average relative *squared* error
//!   (the paper's primary accuracy metric, which divides by the estimate
//!   and therefore punishes underestimation hard), root mean squared error
//!   for negative queries, and the estimate/real ratio buckets of
//!   Fig. 5(a).
//! - [`harness`]: corpus handling (generate → parse → shared suffix trie),
//!   workload construction with exact ground truths, and CST construction
//!   at a given space fraction.
//! - [`experiments`]: one function per table/figure; each returns plain
//!   data rows that the `twig-bench` binaries print.
//!
//! Ground truth throughout is the **occurrence** count (Definition 3):
//! both corpora contain duplicate sibling labels, so — as the paper notes
//! in Sec. 6.1 — the evaluation is the multiset counting problem.

pub mod experiments;
pub mod harness;
pub mod metrics;

pub use harness::{Corpus, CstPair, Scale, Workload};
pub use metrics::{
    avg_relative_error, avg_relative_squared_error, ratio_buckets, rmse, RatioBuckets,
};
