//! The paper's error metrics (Sec. 6.1).

/// Floor applied to the estimate in the denominator of the relative
/// squared error: parse failures estimate exactly 0 and the paper's
/// metric divides by the estimate. 0.01 keeps such queries severely
/// penalized (as the paper's near-zero products are) without producing
/// infinities.
pub const ESTIMATE_FLOOR: f64 = 0.01;

/// Average relative error: `mean(|c - ĉ| / c)` over positive queries.
///
/// # Panics
/// Panics if lengths differ or some true count is 0.
pub fn avg_relative_error(truths: &[u64], estimates: &[f64]) -> f64 {
    assert_eq!(truths.len(), estimates.len());
    assert!(!truths.is_empty(), "empty workload");
    truths
        .iter()
        .zip(estimates)
        .map(|(&c, &e)| {
            assert!(c > 0, "relative error needs positive true counts");
            (c as f64 - e).abs() / c as f64
        })
        .sum::<f64>()
        / truths.len() as f64
}

/// Average relative squared error: `mean((c - ĉ)² / ĉ)` — the paper's
/// primary metric; dividing by the *estimate* makes severe
/// underestimation visible (their worked example in Sec. 6.1).
pub fn avg_relative_squared_error(truths: &[u64], estimates: &[f64]) -> f64 {
    assert_eq!(truths.len(), estimates.len());
    assert!(!truths.is_empty(), "empty workload");
    truths
        .iter()
        .zip(estimates)
        .map(|(&c, &e)| {
            let diff = c as f64 - e;
            diff * diff / e.max(ESTIMATE_FLOOR)
        })
        .sum::<f64>()
        / truths.len() as f64
}

/// Root mean squared error: `sqrt(mean((c - ĉ)²))` — used for negative
/// queries where relative metrics are undefined (c = 0).
pub fn rmse(truths: &[u64], estimates: &[f64]) -> f64 {
    assert_eq!(truths.len(), estimates.len());
    assert!(!truths.is_empty(), "empty workload");
    let mean_sq = truths
        .iter()
        .zip(estimates)
        .map(|(&c, &e)| {
            let diff = c as f64 - e;
            diff * diff
        })
        .sum::<f64>()
        / truths.len() as f64;
    mean_sq.sqrt()
}

/// The Fig. 5(a) histogram: fraction of queries whose `estimate / real`
/// ratio falls into each bucket.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RatioBuckets {
    /// ratio < 0.1 (underestimated by more than 10×)
    pub lt_0_1: f64,
    /// 0.1 ≤ ratio < 0.5
    pub lt_0_5: f64,
    /// 0.5 ≤ ratio < 1
    pub lt_1: f64,
    /// 1 ≤ ratio < 1.5
    pub lt_1_5: f64,
    /// 1.5 ≤ ratio < 10
    pub lt_10: f64,
    /// ratio ≥ 10 (overestimated by 10× or more)
    pub ge_10: f64,
}

impl RatioBuckets {
    /// Bucket labels in the paper's Figure 5(a) order.
    pub const LABELS: [&'static str; 6] = ["<0.1", "<0.5", "<1", "<1.5", "<10", ">=10"];

    /// Buckets as an array in label order (percent values 0–100).
    pub fn as_percentages(&self) -> [f64; 6] {
        [
            self.lt_0_1 * 100.0,
            self.lt_0_5 * 100.0,
            self.lt_1 * 100.0,
            self.lt_1_5 * 100.0,
            self.lt_10 * 100.0,
            self.ge_10 * 100.0,
        ]
    }
}

/// Computes the ratio distribution over a positive workload.
pub fn ratio_buckets(truths: &[u64], estimates: &[f64]) -> RatioBuckets {
    assert_eq!(truths.len(), estimates.len());
    assert!(!truths.is_empty(), "empty workload");
    let mut buckets = RatioBuckets::default();
    for (&c, &e) in truths.iter().zip(estimates) {
        assert!(c > 0, "ratio buckets need positive true counts");
        let ratio = e / c as f64;
        let slot = if ratio < 0.1 {
            &mut buckets.lt_0_1
        } else if ratio < 0.5 {
            &mut buckets.lt_0_5
        } else if ratio < 1.0 {
            &mut buckets.lt_1
        } else if ratio < 1.5 {
            &mut buckets.lt_1_5
        } else if ratio < 10.0 {
            &mut buckets.lt_10
        } else {
            &mut buckets.ge_10
        };
        *slot += 1.0;
    }
    let n = truths.len() as f64;
    buckets.lt_0_1 /= n;
    buckets.lt_0_5 /= n;
    buckets.lt_1 /= n;
    buckets.lt_1_5 /= n;
    buckets.lt_10 /= n;
    buckets.ge_10 /= n;
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimates_have_zero_error() {
        let truths = [10, 20, 30];
        let estimates = [10.0, 20.0, 30.0];
        assert_eq!(avg_relative_error(&truths, &estimates), 0.0);
        assert_eq!(avg_relative_squared_error(&truths, &estimates), 0.0);
        assert_eq!(rmse(&truths, &estimates), 0.0);
    }

    #[test]
    fn relative_error_basic() {
        // |10-5|/10 = 0.5, |100-150|/100 = 0.5 → mean 0.5
        assert_eq!(avg_relative_error(&[10, 100], &[5.0, 150.0]), 0.5);
    }

    #[test]
    fn squared_error_matches_paper_example() {
        // The Sec 6.1 worked example: algorithm A estimates 5000 for a
        // true 10000 and 50 for a true 100: errors 5000 and 50 — the
        // estimate for Q1 is "more erroneous".
        let e1 = avg_relative_squared_error(&[10_000], &[5_000.0]);
        let e2 = avg_relative_squared_error(&[100], &[50.0]);
        assert_eq!(e1, 5_000.0);
        assert_eq!(e2, 50.0);
        assert!(e1 > e2);
        // Algorithm B: 9950 and 50 — now Q2 is more erroneous.
        let b1 = avg_relative_squared_error(&[10_000], &[9_950.0]);
        assert!((b1 - 2500.0 / 9950.0).abs() < 1e-9);
        assert!(b1 < e2);
    }

    #[test]
    fn zero_estimates_heavily_penalized_not_infinite() {
        let err = avg_relative_squared_error(&[100], &[0.0]);
        assert!(err.is_finite());
        assert!(err >= 100.0 * 100.0 / ESTIMATE_FLOOR * 0.99);
    }

    #[test]
    fn rmse_for_negative_queries() {
        // truths all zero; estimates 3,4 → sqrt((9+16)/2)
        let err = rmse(&[0, 0], &[3.0, 4.0]);
        assert!((err - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ratio_buckets_partition() {
        let truths = [100, 100, 100, 100, 100, 100];
        let estimates = [5.0, 30.0, 80.0, 120.0, 500.0, 5000.0];
        let buckets = ratio_buckets(&truths, &estimates);
        let percentages = buckets.as_percentages();
        for p in percentages {
            assert!((p - 100.0 / 6.0).abs() < 1e-9);
        }
        assert!((percentages.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_bucket_boundaries() {
        let buckets = ratio_buckets(&[10, 10, 10], &[1.0, 10.0, 15.0]);
        // 0.1 goes to <0.5 (left-inclusive), 1.0 to <1.5, 1.5 to <10.
        assert_eq!(buckets.lt_0_5, 1.0 / 3.0);
        assert_eq!(buckets.lt_1_5, 1.0 / 3.0);
        assert_eq!(buckets.lt_10, 1.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_workload_rejected() {
        let _ = avg_relative_error(&[], &[]);
    }
}
