//! Meta-crate for the twig selectivity estimation workspace.
//!
//! Re-exports the public crates so the `examples/` and `tests/` targets can
//! reach every subsystem through one dependency. Library users should depend
//! on the individual crates (`twig-core` for the estimator) instead.

pub use twig_core as core;
pub use twig_datagen as datagen;
pub use twig_eval as eval;
pub use twig_exact as exact;
pub use twig_pst as pst;
pub use twig_sethash as sethash;
pub use twig_tree as tree;
pub use twig_util as util;
pub use twig_xml as xml;
